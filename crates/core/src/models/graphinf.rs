//! The paper's graphical-model-inference scalability model (Section IV-B,
//! V-B).
//!
//! Vertices of a pairwise MRF are partitioned across `n` workers; each
//! worker iterates over the edges incident to its vertices. The slowest
//! worker (most edges) gates the superstep:
//!
//! ```text
//! t_cp = max_i(E_i) · c(S) / F
//! t_cm = 32/B · r · V · S           (linear communication of replicas)
//! ```
//!
//! `max_i(E_i)` is estimated with the paper's Monte-Carlo-like simulation:
//! vertices are assigned to workers at random, each worker's raw count
//! `E_i^rnd = Σ deg(v)` double-counts intra-worker edges, corrected by
//!
//! ```text
//! E_dup = ½·(V/n − 1)·(V/n) · E/(V(V−1)/2)
//! ```
//!
//! > Note: Section V-B of the paper prints the BP computation time as
//! > `max_i(E_i)/(F·n)·(S+2(S+S²))`, with an extra `1/n` relative to the
//! > Section IV-B definition. Since `E_i` is already a *per-worker* count
//! > (it scales as ≈`E/n`), the extra division would make speedup quadratic
//! > in `n`, contradicting Fig 4's sub-linear curves; we implement the
//! > Section IV-B form and treat the V-B rendering as a typo.

use crate::speedup::SpeedupCurve;
use crate::units::{BitsPerSec, FlopCount, FlopsRate, Seconds};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-edge computation cost of loopy belief propagation with `S` states:
/// `c(S) = S + 2·(S + S²)` (paper, Section V-B). One belief update plus a
/// message generation/marginalisation per direction.
#[inline]
pub fn bp_cost_per_edge(states: usize) -> FlopCount {
    let s = states as f64;
    FlopCount::new(s + 2.0 * (s + s * s))
}

/// The paper's duplicate-edge correction for the random-assignment
/// estimator: expected number of double-counted (intra-worker) edges on one
/// worker holding `V/n` vertices.
///
/// `E_dup = ½·(V/n − 1)·(V/n) · E / (V(V−1)/2)`
#[inline]
pub fn duplicate_edge_correction(v: f64, e: f64, n: usize) -> f64 {
    let per_worker = v / n as f64;
    let pairs_on_worker = 0.5 * (per_worker - 1.0).max(0.0) * per_worker;
    let edge_probability = e / (v * (v - 1.0) / 2.0);
    pairs_on_worker * edge_probability
}

/// One Monte-Carlo trial of the paper's estimator: randomly assign each
/// vertex (given by its degree) to one of `n` workers, accumulate per-worker
/// degree sums, take the max, and subtract the duplicate correction.
///
/// Returns the corrected estimate of `max_i(E_i)`.
pub fn max_edges_random_assignment<R: Rng + ?Sized>(degrees: &[u32], n: usize, rng: &mut R) -> f64 {
    assert!(n >= 1, "need at least one worker");
    let v = degrees.len() as f64;
    let e: f64 = degrees.iter().map(|&d| f64::from(d)).sum::<f64>() / 2.0;
    if n == 1 {
        return e;
    }
    let mut per_worker = vec![0.0f64; n];
    for &d in degrees {
        let w = rng.gen_range(0..n);
        per_worker[w] += f64::from(d);
    }
    let max_rnd = per_worker.iter().copied().fold(0.0, f64::max);
    let corrected = max_rnd - duplicate_edge_correction(v, e, n);
    corrected.max(0.0)
}

/// Averages [`max_edges_random_assignment`] over `trials` independent
/// assignments — the "Monte-Carlo-like simulation" of Section IV-B.
pub fn max_edges_monte_carlo<R: Rng + ?Sized>(
    degrees: &[u32],
    n: usize,
    trials: usize,
    rng: &mut R,
) -> f64 {
    assert!(trials >= 1, "need at least one trial");
    let sum: f64 = (0..trials)
        .map(|_| max_edges_random_assignment(degrees, n, rng))
        .sum();
    sum / trials as f64
}

/// Closed-form approximation of the random-assignment estimator, avoiding
/// the Monte-Carlo trials entirely: under i.i.d. vertex placement a
/// worker's degree sum has mean `μ = 2E/n` and variance
/// `σ² = (1/n)(1 − 1/n)·Σ_v d_v²`; the expected maximum of `n` such sums
/// is approximated by the Gumbel-style bound `μ + σ·√(2·ln n)`. For
/// hub-dominated graphs the normal approximation under-counts, so the
/// estimate is floored by the hub bound `d_max + (2E − d_max)/n` (the hub
/// lands somewhere, and its worker also receives an average share of the
/// rest). The duplicate correction `E_dup` is subtracted as in the
/// Monte-Carlo version.
pub fn max_edges_analytic(degrees: &[u32], n: usize) -> f64 {
    assert!(n >= 1, "need at least one worker");
    assert!(!degrees.is_empty(), "need a degree sequence");
    let two_e: f64 = degrees.iter().map(|&d| f64::from(d)).sum();
    let e = two_e / 2.0;
    if n == 1 {
        return e;
    }
    let v = degrees.len() as f64;
    let mean = two_e / n as f64;
    let sum_sq: f64 = degrees.iter().map(|&d| f64::from(d) * f64::from(d)).sum();
    let variance = (1.0 / n as f64) * (1.0 - 1.0 / n as f64) * sum_sq;
    let gumbel = mean + variance.sqrt() * (2.0 * (n as f64).ln()).sqrt();
    let d_max = degrees.iter().copied().max().unwrap_or(0) as f64;
    let hub_bound = d_max + (two_e - d_max) / n as f64;
    let raw = gumbel.max(hub_bound);
    (raw - duplicate_edge_correction(v, e, n)).max(0.0)
}

/// How `max_i(E_i)` is obtained for each worker count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum EdgeLoad {
    /// Balanced ideal: `max_i(E_i) = E/n` (no skew; lower bound).
    Balanced,
    /// Precomputed per-`n` values, e.g. from [`max_edges_monte_carlo`] or
    /// from exact partition counts; `loads[k]` corresponds to `n = k+1`.
    PerWorkerMax(Vec<f64>),
}

/// Scalability model of iterative graphical-model inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphInferenceModel {
    /// Number of vertices `V`.
    pub vertices: f64,
    /// Number of (undirected) edges `E`.
    pub edges: f64,
    /// Number of states `S` per variable.
    pub states: usize,
    /// Per-edge computation cost `c(S)`.
    pub cost_per_edge: FlopCount,
    /// Effective per-worker compute rate `F`.
    pub flops: FlopsRate,
    /// Link bandwidth `B` (use `f64::INFINITY` bits/s for shared memory).
    pub bandwidth: BitsPerSec,
    /// Replication factor `r`: fraction of vertex states that must be
    /// delivered to remote workers each iteration.
    pub replication: f64,
    /// Per-worker-count maximum edge loads.
    pub edge_load: EdgeLoad,
}

impl GraphInferenceModel {
    /// A convenience constructor for loopy BP (`c(S) = S + 2(S+S²)`).
    pub fn belief_propagation(
        vertices: f64,
        edges: f64,
        states: usize,
        flops: FlopsRate,
        bandwidth: BitsPerSec,
        replication: f64,
        edge_load: EdgeLoad,
    ) -> Self {
        Self {
            vertices,
            edges,
            states,
            cost_per_edge: bp_cost_per_edge(states),
            flops,
            bandwidth,
            replication,
            edge_load,
        }
    }

    /// `max_i(E_i)` for the given worker count.
    pub fn max_edges(&self, n: usize) -> f64 {
        assert!(n >= 1);
        match &self.edge_load {
            EdgeLoad::Balanced => self.edges / n as f64,
            EdgeLoad::PerWorkerMax(loads) => *loads
                .get(n - 1)
                // lint: allow(panic-free-lib): documented # Panics contract — loads are recorded for every n the curve samples
                .unwrap_or_else(|| panic!("no edge load recorded for n={n}")),
        }
    }

    /// Computation time `t_cp = max_i(E_i)·c(S)/F` (Section IV-B form).
    pub fn comp_time(&self, n: usize) -> Seconds {
        (self.cost_per_edge * self.max_edges(n)) / self.flops
    }

    /// Communication time `t_cm = 32/B · r · V · S` (linear model over the
    /// replicated variable states). Zero for a single worker and for
    /// shared-memory (infinite-bandwidth) configurations.
    pub fn comm_time(&self, n: usize) -> Seconds {
        if n <= 1 || self.bandwidth.get().is_infinite() {
            return Seconds::zero();
        }
        let bits = 32.0 * self.replication * self.vertices * self.states as f64;
        Seconds::new(bits / self.bandwidth.get())
    }

    /// Iteration time `t(n) = t_cp(n) + t_cm(n)`.
    pub fn iteration_time(&self, n: usize) -> Seconds {
        self.comp_time(n) + self.comm_time(n)
    }

    /// Strong-scaling speedup curve over `ns`.
    pub fn curve(&self, ns: impl IntoIterator<Item = usize>) -> SpeedupCurve {
        SpeedupCurve::from_fn(ns, |n| self.iteration_time(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bp_cost_matches_paper_s2() {
        // S = 2 (the Fig 4 experiment): c(S) = 2 + 2·(2+4) = 14.
        assert_eq!(bp_cost_per_edge(2).get(), 14.0);
    }

    #[test]
    fn bp_cost_quadratic_in_states() {
        // Dominant term 2S² for large S.
        let c100 = bp_cost_per_edge(100).get();
        assert!((c100 - (100.0 + 2.0 * (100.0 + 10_000.0))).abs() < 1e-9);
    }

    #[test]
    fn duplicate_correction_matches_formula() {
        let (v, e, n) = (1000.0, 5000.0, 10usize);
        let per = v / n as f64;
        let expected = 0.5 * (per - 1.0) * per * (e / (v * (v - 1.0) / 2.0));
        assert!((duplicate_edge_correction(v, e, n) - expected).abs() < 1e-9);
    }

    #[test]
    fn duplicate_correction_zero_for_single_vertex_workers() {
        // V/n = 1 vertex per worker → no intra-worker pairs.
        assert_eq!(duplicate_edge_correction(100.0, 450.0, 100), 0.0);
    }

    /// Regular graph: every vertex degree d. Random assignment of V/n
    /// vertices gives E_i^rnd ≈ d·V/n; corrected ≈ edges/n for large V.
    #[test]
    fn monte_carlo_close_to_balanced_for_regular_graph() {
        let degrees = vec![10u32; 10_000];
        let e = 10.0 * 10_000.0 / 2.0;
        let mut rng = StdRng::seed_from_u64(42);
        let n = 8;
        let est = max_edges_monte_carlo(&degrees, n, 20, &mut rng);
        let balanced = e / n as f64;
        // Per-worker degree sum is ≈ d·V/n = 12500 with duplicate
        // correction ≈ E/n²·… small; estimate should be within ~2x·balanced
        // and above balanced (max ≥ mean).
        assert!(est >= balanced * 0.95, "est {est} vs balanced {balanced}");
        assert!(est <= balanced * 2.2, "est {est} vs balanced {balanced}");
    }

    #[test]
    fn monte_carlo_single_worker_is_exact() {
        let degrees = vec![4u32; 100];
        let mut rng = StdRng::seed_from_u64(1);
        let est = max_edges_monte_carlo(&degrees, 1, 5, &mut rng);
        assert_eq!(est, 200.0); // E = 4·100/2.
    }

    #[test]
    fn skewed_degrees_give_higher_max_than_balanced() {
        // One hub of degree 5000 among degree-2 vertices: whichever worker
        // receives the hub carries it entirely.
        let mut degrees = vec![2u32; 10_000];
        degrees[0] = 5000;
        let e: f64 = degrees.iter().map(|&d| f64::from(d)).sum::<f64>() / 2.0;
        let mut rng = StdRng::seed_from_u64(7);
        let n = 16;
        let est = max_edges_monte_carlo(&degrees, n, 10, &mut rng);
        assert!(
            est > 1.5 * e / n as f64,
            "hub must create skew: {est} vs {}",
            e / n as f64
        );
    }

    #[test]
    fn analytic_estimator_tracks_monte_carlo_on_regular_graph() {
        let degrees = vec![10u32; 20_000];
        let mut rng = StdRng::seed_from_u64(3);
        for n in [2usize, 4, 8, 16, 32] {
            let mc = max_edges_monte_carlo(&degrees, n, 10, &mut rng);
            let analytic = max_edges_analytic(&degrees, n);
            let rel = (analytic - mc).abs() / mc;
            assert!(
                rel < 0.10,
                "n={n}: analytic {analytic:.0} vs MC {mc:.0} ({rel:.2})"
            );
        }
    }

    #[test]
    fn analytic_estimator_tracks_monte_carlo_on_hub_graph() {
        let mut degrees = vec![3u32; 30_000];
        degrees[0] = 20_000;
        let mut rng = StdRng::seed_from_u64(4);
        for n in [4usize, 16, 64] {
            let mc = max_edges_monte_carlo(&degrees, n, 10, &mut rng);
            let analytic = max_edges_analytic(&degrees, n);
            let rel = (analytic - mc).abs() / mc;
            assert!(
                rel < 0.15,
                "n={n}: analytic {analytic:.0} vs MC {mc:.0} ({rel:.2})"
            );
        }
    }

    #[test]
    fn analytic_estimator_exact_at_one_worker() {
        let degrees = vec![4u32; 100];
        assert_eq!(max_edges_analytic(&degrees, 1), 200.0);
    }

    #[test]
    fn analytic_estimator_above_balanced_share() {
        let degrees: Vec<u32> = (1..=1000).map(|i| (i % 17 + 1) as u32).collect();
        let e: f64 = degrees.iter().map(|&d| f64::from(d)).sum::<f64>() / 2.0;
        for n in [2usize, 8, 32] {
            assert!(max_edges_analytic(&degrees, n) >= e / n as f64);
        }
    }

    fn shared_memory_model(edge_load: EdgeLoad) -> GraphInferenceModel {
        GraphInferenceModel::belief_propagation(
            16_000.0,
            100_000.0,
            2,
            FlopsRate::giga(7.6),
            BitsPerSec::new(f64::INFINITY),
            0.5,
            edge_load,
        )
    }

    #[test]
    fn shared_memory_has_zero_comm() {
        let m = shared_memory_model(EdgeLoad::Balanced);
        assert!(m.comm_time(64).is_zero());
    }

    #[test]
    fn balanced_load_scales_linearly_in_shared_memory() {
        let m = shared_memory_model(EdgeLoad::Balanced);
        let c = m.curve(1..=32);
        for (n, s) in c.speedups() {
            assert!((s - n as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn skewed_load_scales_sublinearly() {
        // max E_i decays slower than E/n: speedup below linear.
        let loads: Vec<f64> = (1..=32)
            .map(|n| 100_000.0 / n as f64 * (1.0 + 0.1 * (n as f64).ln()))
            .collect();
        let m = shared_memory_model(EdgeLoad::PerWorkerMax(loads));
        let c = m.curve(1..=32);
        for (n, s) in c.speedups().into_iter().skip(1) {
            assert!(s < n as f64, "skew must keep speedup sublinear at n={n}");
            assert!(s > 1.0, "but still scalable at n={n}");
        }
    }

    #[test]
    fn networked_comm_time_matches_formula() {
        let m = GraphInferenceModel {
            bandwidth: BitsPerSec::giga(1.0),
            ..shared_memory_model(EdgeLoad::Balanced)
        };
        let expected = 32.0 * 0.5 * 16_000.0 * 2.0 / 1e9;
        assert!((m.comm_time(4).as_secs() - expected).abs() < 1e-15);
        assert!(m.comm_time(1).is_zero());
    }

    #[test]
    #[should_panic(expected = "no edge load recorded")]
    fn missing_edge_load_panics() {
        let m = shared_memory_model(EdgeLoad::PerWorkerMax(vec![100.0]));
        let _ = m.comp_time(2);
    }

    #[test]
    fn comp_time_uses_cost_per_edge() {
        let m = shared_memory_model(EdgeLoad::Balanced);
        let n = 4;
        let expected = (100_000.0 / 4.0) * 14.0 / 7.6e9;
        assert!((m.comp_time(n).as_secs() - expected).abs() / expected < 1e-12);
    }
}
