//! Computation time-complexity models `t_cp`.
//!
//! The paper's base model is perfectly parallel work division,
//! `t_cp = c(D)/n` (with `c(D)` the single-node computation cost), refined
//! for graph workloads into a *max-load* model where the slowest worker
//! (the one holding the most edges) determines the superstep time. Amdahl
//! and Gustafson formulations from the parallel-algorithms literature are
//! included for comparison and for the ablation experiments.

use crate::units::{FlopCount, FlopsRate, Seconds};
use serde::{Deserialize, Serialize};

/// A computation time-complexity model: time for the compute phase of one
/// superstep with `n` workers.
pub trait CompModel: std::fmt::Debug + Send + Sync {
    /// Time for the compute phase with `n` workers (`n ≥ 1`).
    fn time(&self, n: usize) -> Seconds;

    /// Human-readable name used in reports.
    fn name(&self) -> &'static str;
}

/// Perfectly parallel division of work: `t_cp = c(D)/(F·n)`.
///
/// This is the paper's base computation model for data-parallel gradient
/// descent: the batch is split evenly, every worker computes its share.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PerfectlyParallel {
    /// Total single-node work `c(D)`.
    pub work: FlopCount,
    /// Effective per-node rate `F`.
    pub rate: FlopsRate,
}

impl CompModel for PerfectlyParallel {
    fn time(&self, n: usize) -> Seconds {
        assert!(n >= 1, "need at least one worker");
        (self.work / self.rate) / n as f64
    }

    fn name(&self) -> &'static str {
        "perfectly-parallel"
    }
}

/// Max-load model: per-worker loads are supplied explicitly (e.g. edges per
/// partition for graph inference) and the slowest worker gates the
/// superstep: `t_cp = max_i(load_i)/F`.
///
/// This is the paper's `t_cp^{GI} = max_{i∈[1,n]}(E_i)·c(S)/F` with the
/// per-worker loads already multiplied by the per-unit cost `c(S)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxLoad {
    /// `loads[k]` is the per-worker maximum load when `k+1` workers are
    /// used; entry `k` must be present for every `n` queried.
    pub max_load_per_n: Vec<FlopCount>,
    /// Effective per-node rate `F`.
    pub rate: FlopsRate,
}

impl CompModel for MaxLoad {
    fn time(&self, n: usize) -> Seconds {
        assert!(n >= 1, "need at least one worker");
        let load = self
            .max_load_per_n
            .get(n - 1)
            // lint: allow(panic-free-lib): documented # Panics contract — the load table covers 1..=max_n by construction
            .unwrap_or_else(|| panic!("no load recorded for n={n}"));
        *load / self.rate
    }

    fn name(&self) -> &'static str {
        "max-load"
    }
}

/// Amdahl's law: a fraction `serial` of the work cannot be parallelised.
/// `t(n) = t(1)·(serial + (1−serial)/n)`.
///
/// The paper notes (citing Schreiber) that a framework overhead treated as a
/// fixed Amdahl fraction can be made to decline with `n`, "so that the
/// sequential piece is irrelevant to scaling" — the ablation bench
/// contrasts this model with the paper's.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AmdahlFraction {
    /// Total single-node work.
    pub work: FlopCount,
    /// Effective per-node rate.
    pub rate: FlopsRate,
    /// Serial fraction in `[0, 1]`.
    pub serial: f64,
}

impl AmdahlFraction {
    /// Creates the model, validating the serial fraction.
    pub fn new(work: FlopCount, rate: FlopsRate, serial: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&serial),
            "serial fraction must be in [0,1]"
        );
        Self { work, rate, serial }
    }

    /// The classic Amdahl speedup bound `1/(serial + (1−serial)/n)`.
    pub fn speedup_bound(&self, n: usize) -> f64 {
        1.0 / (self.serial + (1.0 - self.serial) / n as f64)
    }
}

impl CompModel for AmdahlFraction {
    fn time(&self, n: usize) -> Seconds {
        assert!(n >= 1, "need at least one worker");
        let t1 = self.work / self.rate;
        t1 * (self.serial + (1.0 - self.serial) / n as f64)
    }

    fn name(&self) -> &'static str {
        "amdahl"
    }
}

/// Gustafson's scaled-speedup view: the *parallel part of the problem grows*
/// with `n` while the run time stays fixed. `scaled_speedup(n) = serial +
/// (1−serial)·n`. Provided as an analysis helper (weak scaling in the
/// paper's framework is expressed through [`crate::scaling::WeakScaling`]).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Gustafson {
    /// Serial fraction measured on the parallel system, in `[0, 1]`.
    pub serial: f64,
}

impl Gustafson {
    /// Scaled speedup `serial + (1−serial)·n`.
    pub fn scaled_speedup(&self, n: usize) -> f64 {
        assert!((0.0..=1.0).contains(&self.serial));
        self.serial + (1.0 - self.serial) * n as f64
    }
}

/// Closure-backed computation model for quick experimentation.
pub struct FnComp<F> {
    f: F,
    label: &'static str,
}

impl<F> FnComp<F> {
    /// Wraps `f(n) -> Seconds` as a [`CompModel`].
    pub fn new(label: &'static str, f: F) -> Self {
        Self { f, label }
    }
}

impl<F> std::fmt::Debug for FnComp<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FnComp({})", self.label)
    }
}

impl<F: Fn(usize) -> Seconds + Send + Sync> CompModel for FnComp<F> {
    fn time(&self, n: usize) -> Seconds {
        (self.f)(n)
    }

    fn name(&self) -> &'static str {
        self.label
    }
}

impl<M: CompModel + ?Sized> CompModel for Box<M> {
    fn time(&self, n: usize) -> Seconds {
        (**self).time(n)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<M: CompModel + ?Sized> CompModel for std::sync::Arc<M> {
    fn time(&self, n: usize) -> Seconds {
        (**self).time(n)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work() -> FlopCount {
        FlopCount::giga(10.0)
    }

    fn rate() -> FlopsRate {
        FlopsRate::giga(1.0)
    }

    #[test]
    fn perfectly_parallel_halves_with_double_workers() {
        let m = PerfectlyParallel {
            work: work(),
            rate: rate(),
        };
        assert!((m.time(1).as_secs() - 10.0).abs() < 1e-12);
        assert!((m.time(2).as_secs() - 5.0).abs() < 1e-12);
        assert!((m.time(10).as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_load_uses_slowest_worker() {
        let m = MaxLoad {
            max_load_per_n: vec![
                FlopCount::giga(10.0), // n=1
                FlopCount::giga(6.0),  // n=2: imbalanced, not 5.0
                FlopCount::giga(4.5),  // n=3
            ],
            rate: rate(),
        };
        assert!((m.time(2).as_secs() - 6.0).abs() < 1e-12);
        assert!((m.time(3).as_secs() - 4.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no load recorded")]
    fn max_load_panics_out_of_range() {
        let m = MaxLoad {
            max_load_per_n: vec![FlopCount::giga(1.0)],
            rate: rate(),
        };
        let _ = m.time(2);
    }

    #[test]
    fn amdahl_limits_speedup() {
        let m = AmdahlFraction::new(work(), rate(), 0.1);
        let s_1000 = m.time(1).as_secs() / m.time(1000).as_secs();
        assert!(s_1000 < 10.0, "speedup must be bounded by 1/serial = 10");
        assert!(s_1000 > 9.0);
        assert!((m.speedup_bound(1000) - s_1000).abs() < 1e-9);
    }

    #[test]
    fn amdahl_zero_serial_is_perfectly_parallel() {
        let a = AmdahlFraction::new(work(), rate(), 0.0);
        let p = PerfectlyParallel {
            work: work(),
            rate: rate(),
        };
        for n in [1usize, 2, 7, 64] {
            assert!((a.time(n).as_secs() - p.time(n).as_secs()).abs() < 1e-12);
        }
    }

    #[test]
    fn gustafson_scaled_speedup_is_linear() {
        let g = Gustafson { serial: 0.2 };
        assert!((g.scaled_speedup(1) - 1.0).abs() < 1e-12);
        assert!((g.scaled_speedup(10) - (0.2 + 0.8 * 10.0)).abs() < 1e-12);
    }

    #[test]
    fn fn_comp_evaluates_closure() {
        let m = FnComp::new("inv", |n| Seconds::new(1.0 / n as f64));
        assert_eq!(m.time(4).as_secs(), 0.25);
        assert_eq!(m.name(), "inv");
    }

    #[test]
    #[should_panic(expected = "serial fraction")]
    fn amdahl_rejects_bad_fraction() {
        let _ = AmdahlFraction::new(work(), rate(), 1.5);
    }
}
