//! Model-validation metrics: MAPE, MPE, RMSE and comparison reports.
//!
//! The paper reports model accuracy as the mean absolute percentage error
//! (MAPE) between model estimates and measurements: 13.7 % for the Spark
//! FC-ANN experiment, 1.2 % for the Inception-v3 weak-scaling experiment,
//! and 25.4 % / 26 % / 19.6 % / 23.5 % for the four belief-propagation
//! graph sizes.

use serde::{Deserialize, Serialize};

/// Mean absolute percentage error between predictions and reference values:
/// `100/N · Σ |pred − ref| / |ref|`.
///
/// # Panics
/// Panics on empty or mismatched inputs, or when any reference value is
/// zero (the percentage error is undefined there).
pub fn mape(predicted: &[f64], reference: &[f64]) -> f64 {
    validate_pairs(predicted, reference);
    let sum: f64 = predicted
        .iter()
        .zip(reference)
        .map(|(&p, &r)| {
            assert!(r != 0.0, "MAPE undefined for zero reference value");
            ((p - r) / r).abs()
        })
        .sum();
    100.0 * sum / predicted.len() as f64
}

/// Mean percentage error (signed): positive when the model over-predicts on
/// average.
///
/// # Panics
/// Same conditions as [`mape`].
pub fn mpe(predicted: &[f64], reference: &[f64]) -> f64 {
    validate_pairs(predicted, reference);
    let sum: f64 = predicted
        .iter()
        .zip(reference)
        .map(|(&p, &r)| {
            assert!(r != 0.0, "MPE undefined for zero reference value");
            (p - r) / r
        })
        .sum();
    100.0 * sum / predicted.len() as f64
}

/// Root-mean-square error in the quantities' own unit.
///
/// # Panics
/// Panics on empty or mismatched inputs.
pub fn rmse(predicted: &[f64], reference: &[f64]) -> f64 {
    validate_pairs(predicted, reference);
    let sum: f64 = predicted
        .iter()
        .zip(reference)
        .map(|(&p, &r)| (p - r) * (p - r))
        .sum();
    (sum / predicted.len() as f64).sqrt()
}

/// Maximum absolute percentage error across points.
///
/// # Panics
/// Same conditions as [`mape`].
pub fn max_ape(predicted: &[f64], reference: &[f64]) -> f64 {
    validate_pairs(predicted, reference);
    predicted
        .iter()
        .zip(reference)
        .map(|(&p, &r)| {
            assert!(r != 0.0, "APE undefined for zero reference value");
            100.0 * ((p - r) / r).abs()
        })
        .fold(0.0, f64::max)
}

fn validate_pairs(predicted: &[f64], reference: &[f64]) {
    assert!(!predicted.is_empty(), "need at least one point");
    assert_eq!(
        predicted.len(),
        reference.len(),
        "prediction/reference length mismatch"
    );
}

/// A point-by-point model-vs-measurement comparison over worker counts,
/// as printed under each figure of the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comparison {
    /// Worker counts the two series share.
    pub ns: Vec<usize>,
    /// Model-predicted values (speedups, typically).
    pub predicted: Vec<f64>,
    /// Reference (measured / simulated) values.
    pub reference: Vec<f64>,
}

impl Comparison {
    /// Builds a comparison from paired `(n, predicted, reference)` rows.
    ///
    /// # Panics
    /// Panics when the rows are empty.
    pub fn new(rows: impl IntoIterator<Item = (usize, f64, f64)>) -> Self {
        let mut ns = Vec::new();
        let mut predicted = Vec::new();
        let mut reference = Vec::new();
        for (n, p, r) in rows {
            ns.push(n);
            predicted.push(p);
            reference.push(r);
        }
        assert!(!ns.is_empty(), "comparison needs at least one row");
        Self {
            ns,
            predicted,
            reference,
        }
    }

    /// Joins two speedup series on their common worker counts.
    ///
    /// # Panics
    /// Panics when the series share no worker count.
    pub fn join(predicted: &[(usize, f64)], reference: &[(usize, f64)]) -> Self {
        let rows: Vec<(usize, f64, f64)> = predicted
            .iter()
            .filter_map(|&(n, p)| {
                reference
                    .iter()
                    .find(|&&(m, _)| m == n)
                    .map(|&(_, r)| (n, p, r))
            })
            .collect();
        assert!(!rows.is_empty(), "series share no worker counts");
        Self::new(rows)
    }

    /// MAPE of the comparison.
    pub fn mape(&self) -> f64 {
        mape(&self.predicted, &self.reference)
    }

    /// Signed MPE of the comparison.
    pub fn mpe(&self) -> f64 {
        mpe(&self.predicted, &self.reference)
    }

    /// RMSE of the comparison.
    pub fn rmse(&self) -> f64 {
        rmse(&self.predicted, &self.reference)
    }

    /// Worst-point absolute percentage error.
    pub fn max_ape(&self) -> f64 {
        max_ape(&self.predicted, &self.reference)
    }

    /// Paper-style table: one row per worker count plus a MAPE footer.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6} {:>12} {:>12} {:>9}",
            "n", "model", "measured", "APE%"
        );
        for ((&n, &p), &r) in self.ns.iter().zip(&self.predicted).zip(&self.reference) {
            let ape = 100.0 * ((p - r) / r).abs();
            let _ = writeln!(out, "{n:>6} {p:>12.4} {r:>12.4} {ape:>9.2}");
        }
        let _ = writeln!(out, "MAPE: {:.1}%", self.mape());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_zero_for_exact_match() {
        assert_eq!(mape(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn mape_hand_computed() {
        // errors: 10% and 20% → mean 15%.
        let m = mape(&[1.1, 2.4], &[1.0, 2.0]);
        assert!((m - 15.0).abs() < 1e-9);
    }

    #[test]
    fn mape_symmetric_in_sign_of_error() {
        let over = mape(&[1.1], &[1.0]);
        let under = mape(&[0.9], &[1.0]);
        assert!((over - under).abs() < 1e-9);
    }

    #[test]
    fn mpe_signed() {
        assert!(mpe(&[1.1], &[1.0]) > 0.0);
        assert!(mpe(&[0.9], &[1.0]) < 0.0);
        // +10% and −10% cancel.
        assert!(mpe(&[1.1, 0.9], &[1.0, 1.0]).abs() < 1e-9);
    }

    #[test]
    fn rmse_hand_computed() {
        // errors 3 and 4 → rmse = sqrt((9+16)/2) = sqrt(12.5).
        let r = rmse(&[3.0, 0.0], &[0.0, 4.0]);
        assert!((r - 12.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn max_ape_picks_worst_point() {
        let m = max_ape(&[1.1, 2.4], &[1.0, 2.0]);
        assert!((m - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = mape(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_inputs_rejected() {
        let _ = mape(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "zero reference")]
    fn zero_reference_rejected() {
        let _ = mape(&[1.0], &[0.0]);
    }

    #[test]
    fn comparison_join_intersects() {
        let model = vec![(1, 1.0), (2, 1.8), (4, 3.0)];
        let measured = vec![(2, 1.7), (4, 2.8), (8, 4.0)];
        let c = Comparison::join(&model, &measured);
        assert_eq!(c.ns, vec![2, 4]);
        assert!(c.mape() > 0.0);
    }

    #[test]
    #[should_panic(expected = "share no worker counts")]
    fn disjoint_join_rejected() {
        let _ = Comparison::join(&[(1, 1.0)], &[(2, 1.0)]);
    }

    #[test]
    fn comparison_table_contains_mape_footer() {
        let c = Comparison::new([(1, 1.0, 1.0), (2, 2.0, 1.9)]);
        let t = c.to_table();
        assert!(t.contains("MAPE"));
        assert_eq!(t.lines().count(), 4);
    }
}
