//! Determinism contracts of the parallel execution engine: every parallel
//! path must produce **bit-identical** results to the serial one under
//! `MLSCALE_THREADS ∈ {1, 2, 7}`, and the shared-grid order-statistic
//! quadrature must reproduce the per-n Simpson integration it replaced —
//! the invariant the golden-snapshot suite's byte-identical fixtures rest
//! on.

use mlscale_core::hardware::{presets, Heterogeneity};
use mlscale_core::models::gd::{GdComm, GradientDescentModel};
use mlscale_core::models::graphinf::{EdgeLoad, GraphInferenceModel};
use mlscale_core::par;
use mlscale_core::planner::Pricing;
use mlscale_core::straggler::{OrderStatCache, StragglerGdModel, StragglerGraphModel};
use mlscale_core::units::{BitsPerSec, FlopCount, FlopsRate};
use mlscale_core::StragglerModel;
use proptest::prelude::*;

fn fig2_model() -> GradientDescentModel {
    GradientDescentModel {
        cost_per_example: FlopCount::new(6.0 * 12e6),
        batch_size: 60_000.0,
        params: 12e6,
        bits_per_param: 64,
        cluster: presets::spark_cluster(),
        comm: GdComm::Spark,
    }
}

/// All four delay families at one parameterisation.
fn all_models(scale: f64, sigma: f64) -> [StragglerModel; 4] {
    [
        StragglerModel::Deterministic,
        StragglerModel::BoundedJitter { spread: scale },
        StragglerModel::ExponentialTail { mean: scale },
        StragglerModel::LogNormalTail {
            mu: scale.ln(),
            sigma,
        },
    ]
}

#[test]
fn shared_grid_matches_per_n_quadrature_exactly() {
    // The contract the golden fixtures rely on: the batch table is not
    // merely "within 1e-9" of the per-n path — it is the same f64, bit
    // for bit, for every variant, n ∈ 1..=64 and drop count.
    for model in all_models(0.35, 1.1) {
        for drop_k in [0usize, 1, 3] {
            let table = model.expected_order_stats(64, drop_k);
            for n in 1..=64usize {
                let k = drop_k.min(n - 1);
                let single = model.expected_order_stat(n, k);
                assert_eq!(
                    table[n - 1].to_bits(),
                    single.to_bits(),
                    "{model:?} n={n} k={k}: table {} vs per-n {single}",
                    table[n - 1]
                );
            }
        }
    }
}

#[test]
fn memo_cache_matches_uncached_calls_exactly() {
    for model in all_models(0.8, 0.9) {
        let cache = OrderStatCache::new(model);
        cache.warm(32, 1);
        for n in 1..=32usize {
            for k in [0usize, 1, 2] {
                if k >= n {
                    continue;
                }
                assert_eq!(
                    cache.expected_order_stat(n, k).to_bits(),
                    model.expected_order_stat(n, k).to_bits(),
                    "{model:?} n={n} k={k}"
                );
            }
        }
        let bases = [0.5, 1.0, 1.5, 1.0];
        assert_eq!(
            cache.expected_barrier(&bases, 1),
            model.expected_barrier(&bases, 1),
            "{model:?} hetero barrier"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The shared-grid table tracks the per-n quadrature within 1e-9
    /// across the whole parameter space (the exact-equality test above
    /// pins one point; this sweeps the families).
    #[test]
    fn shared_grid_within_tolerance_everywhere(
        scale in 1e-3f64..8.0,
        sigma in 0.05f64..2.0,
        drop_k in 0usize..4,
    ) {
        for model in all_models(scale, sigma) {
            let table = model.expected_order_stats(48, drop_k);
            for n in 1..=48usize {
                let single = model.expected_order_stat(n, drop_k.min(n - 1));
                let tol = 1e-9 * single.abs().max(1.0);
                prop_assert!(
                    (table[n - 1] - single).abs() <= tol,
                    "{:?} n={}: {} vs {}", model, n, table[n - 1], single
                );
            }
        }
    }

    /// Strong/weak curves are bit-identical under MLSCALE_THREADS ∈
    /// {1, 2, 7} — chunked fan-out must never change a sample.
    #[test]
    fn gd_curves_bit_identical_across_thread_counts(
        scale in 1e-2f64..6.0,
        sigma in 0.1f64..1.8,
        backup_k in 0usize..3,
    ) {
        for straggler in all_models(scale, sigma) {
            let wrapped = StragglerGdModel {
                inner: fig2_model(),
                straggler,
                hetero: Heterogeneity::Uniform,
                backup_k,
            };
            let strong_1 = par::with_thread_count(1, || wrapped.strong_curve(1..=24));
            let weak_1 = par::with_thread_count(1, || wrapped.weak_curve(1..=24));
            for threads in [2usize, 7] {
                let strong_t = par::with_thread_count(threads, || wrapped.strong_curve(1..=24));
                let weak_t = par::with_thread_count(threads, || wrapped.weak_curve(1..=24));
                prop_assert_eq!(&strong_1, &strong_t, "strong, {} threads", threads);
                prop_assert_eq!(&weak_1, &weak_t, "weak, {} threads", threads);
            }
        }
    }

    /// The straggler planner's parallel sweep returns the same plans as a
    /// serial sweep at every thread count, for all four query verbs.
    #[test]
    fn planner_bit_identical_across_thread_counts(
        scale in 1e-2f64..4.0,
        backup_k in 0usize..3,
    ) {
        let wrapped = StragglerGdModel {
            inner: fig2_model(),
            straggler: StragglerModel::LogNormalTail { mu: scale.ln(), sigma: 1.0 },
            hetero: Heterogeneity::Uniform,
            backup_k,
        };
        let pricing = Pricing::hourly(2.0);
        let serial = par::with_thread_count(1, || wrapped.planner(100.0, 32, pricing));
        for threads in [2usize, 7] {
            let par_p = par::with_thread_count(threads, || wrapped.planner(100.0, 32, pricing));
            prop_assert_eq!(serial.table(), par_p.table(), "{} threads", threads);
        }
    }
}

#[test]
fn graph_curve_bit_identical_across_thread_counts() {
    let inner = GraphInferenceModel::belief_propagation(
        10_000.0,
        50_000.0,
        2,
        FlopsRate::giga(7.6),
        BitsPerSec::giga(1.0),
        0.5,
        EdgeLoad::Balanced,
    );
    let wrapped = StragglerGraphModel {
        straggler: StragglerModel::LogNormalTail {
            mu: -2.0,
            sigma: 1.2,
        },
        ..StragglerGraphModel::deterministic(inner)
    };
    let serial = par::with_thread_count(1, || wrapped.curve(1..=32));
    for threads in [2usize, 7] {
        let par_c = par::with_thread_count(threads, || wrapped.curve(1..=32));
        assert_eq!(serial, par_c, "threads = {threads}");
    }
}

#[test]
fn curves_match_per_n_single_evaluations_exactly() {
    // The table-driven curve must agree bit-for-bit with the public
    // per-n methods (which run the lone quadrature) — this is what keeps
    // the ext-stragglers golden fixture byte-identical.
    let wrapped = StragglerGdModel {
        inner: fig2_model(),
        straggler: StragglerModel::LogNormalTail {
            mu: 0.33,
            sigma: 1.2,
        },
        hetero: Heterogeneity::Uniform,
        backup_k: 2,
    };
    let curve = wrapped.strong_curve(1..=16);
    for n in 1..=16usize {
        assert_eq!(
            curve.time_at(n).unwrap(),
            wrapped.expected_strong_iteration_time(n),
            "n={n}"
        );
    }
}
