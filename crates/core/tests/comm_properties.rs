//! Property-based tests over the communication time-complexity models:
//! the structural laws every model must satisfy regardless of parameters.

use mlscale_core::comm::{
    CommModel, Linear, LogTree, RingAllReduce, SparkGradientExchange, TorrentBroadcast,
    TwoStageTreeExchange, TwoWaveAggregation,
};
use mlscale_core::units::{Bits, BitsPerSec};
use proptest::prelude::*;

fn models(volume: Bits, bandwidth: BitsPerSec) -> Vec<Box<dyn CommModel>> {
    vec![
        Box::new(Linear { volume, bandwidth }),
        Box::new(LogTree { volume, bandwidth }),
        Box::new(TorrentBroadcast { volume, bandwidth }),
        Box::new(TwoWaveAggregation { volume, bandwidth }),
        Box::new(SparkGradientExchange { volume, bandwidth }),
        Box::new(TwoStageTreeExchange { volume, bandwidth }),
        Box::new(RingAllReduce { volume, bandwidth }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every model is zero at n = 1 (a single worker has nobody to talk
    /// to) and non-negative everywhere.
    #[test]
    fn zero_at_one_nonnegative_everywhere(
        volume_mb in 0.1f64..1000.0,
        bw_gb in 0.1f64..100.0,
        n in 1usize..500,
    ) {
        let volume = Bits::mega(volume_mb);
        let bandwidth = BitsPerSec::giga(bw_gb);
        for m in models(volume, bandwidth) {
            prop_assert!(m.time(1).is_zero(), "{} at n=1", m.name());
            prop_assert!(m.time(n).as_secs() >= 0.0);
        }
    }

    /// Communication time is non-decreasing in the worker count for every
    /// master-coordinated collective (ring all-reduce included: its
    /// 2(n−1)/n factor grows toward 2).
    #[test]
    fn monotone_in_workers(
        volume_mb in 0.1f64..1000.0,
        bw_gb in 0.1f64..100.0,
        n in 2usize..256,
    ) {
        let volume = Bits::mega(volume_mb);
        let bandwidth = BitsPerSec::giga(bw_gb);
        for m in models(volume, bandwidth) {
            prop_assert!(
                m.time(n + 1).as_secs() >= m.time(n).as_secs() - 1e-12,
                "{} must not speed up when adding workers: n={n}",
                m.name()
            );
        }
    }

    /// Time scales linearly in the payload volume (bandwidth-dominated
    /// models: doubling the bits doubles the time).
    #[test]
    fn linear_in_volume(
        volume_mb in 0.1f64..500.0,
        bw_gb in 0.1f64..100.0,
        n in 2usize..200,
        factor in 1.5f64..8.0,
    ) {
        let bandwidth = BitsPerSec::giga(bw_gb);
        let small = models(Bits::mega(volume_mb), bandwidth);
        let big = models(Bits::mega(volume_mb * factor), bandwidth);
        for (s, b) in small.iter().zip(&big) {
            let ts = s.time(n).as_secs();
            let tb = b.time(n).as_secs();
            prop_assert!(
                (tb - factor * ts).abs() <= 1e-9 * tb.max(1.0),
                "{}: {tb} != {factor}·{ts}",
                s.name()
            );
        }
    }

    /// Inverse-linear in bandwidth: twice the bandwidth halves the time.
    #[test]
    fn inverse_in_bandwidth(
        volume_mb in 0.1f64..500.0,
        bw_gb in 0.1f64..50.0,
        n in 2usize..200,
    ) {
        let volume = Bits::mega(volume_mb);
        let slow = models(volume, BitsPerSec::giga(bw_gb));
        let fast = models(volume, BitsPerSec::giga(2.0 * bw_gb));
        for (s, f) in slow.iter().zip(&fast) {
            let ts = s.time(n).as_secs();
            let tf = f.time(n).as_secs();
            prop_assert!((ts - 2.0 * tf).abs() <= 1e-9 * ts.max(1.0), "{}", s.name());
        }
    }

    /// Architecture ordering at scale: ring ≤ tree ≤ two-wave ≤ linear
    /// for large enough clusters (the paper's whole point about linear
    /// communication models).
    #[test]
    fn architecture_ordering_at_scale(
        volume_mb in 1.0f64..500.0,
        bw_gb in 0.1f64..50.0,
        n in 64usize..512,
    ) {
        let volume = Bits::mega(volume_mb);
        let bandwidth = BitsPerSec::giga(bw_gb);
        let ring = RingAllReduce { volume, bandwidth }.time(n);
        let tree = LogTree { volume, bandwidth }.time(n);
        let two_wave = TwoWaveAggregation { volume, bandwidth }.time(n);
        let linear = Linear { volume, bandwidth }.time(n);
        prop_assert!(ring <= tree);
        prop_assert!(tree <= two_wave);
        prop_assert!(two_wave <= linear);
    }
}
