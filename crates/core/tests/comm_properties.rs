//! Property-based tests over the communication time-complexity models:
//! the structural laws every model must satisfy regardless of parameters.

use mlscale_core::comm::{
    AlphaBeta, CommModel, Composite, HalvingDoubling, Hierarchical, Linear, LogTree, RingAllReduce,
    Scaled, SparkGradientExchange, TorrentBroadcast, TwoStageTreeExchange, TwoWaveAggregation,
};
use mlscale_core::hardware::LinkSpec;
use mlscale_core::units::{Bits, BitsPerSec, Seconds};
use proptest::prelude::*;

fn models(volume: Bits, bandwidth: BitsPerSec) -> Vec<Box<dyn CommModel>> {
    vec![
        Box::new(Linear { volume, bandwidth }),
        Box::new(LogTree { volume, bandwidth }),
        Box::new(TorrentBroadcast { volume, bandwidth }),
        Box::new(TwoWaveAggregation { volume, bandwidth }),
        Box::new(SparkGradientExchange { volume, bandwidth }),
        Box::new(TwoStageTreeExchange { volume, bandwidth }),
        Box::new(RingAllReduce { volume, bandwidth }),
        Box::new(HalvingDoubling { volume, bandwidth }),
    ]
}

/// The full sweep for the `n == 1` / non-negativity invariant: every base
/// model plus the combinators (α–β wrapper, composite, scaled) and the
/// inherently latency-aware hierarchical model.
fn all_models(volume: Bits, bandwidth: BitsPerSec, latency: Seconds) -> Vec<Box<dyn CommModel>> {
    let mut all = models(volume, bandwidth);
    let wrapped: Vec<Box<dyn CommModel>> = models(volume, bandwidth)
        .into_iter()
        .map(|inner| Box::new(AlphaBeta { inner, latency }) as Box<dyn CommModel>)
        .collect();
    all.extend(wrapped);
    all.push(Box::new(Hierarchical {
        volume,
        rack_size: 8,
        intra: LinkSpec::new(bandwidth, latency),
        uplink: LinkSpec::new(BitsPerSec::new(bandwidth.get() / 10.0), latency * 10.0),
    }));
    all.push(Box::new(
        Composite::new()
            .with(LogTree { volume, bandwidth })
            .with(TwoWaveAggregation { volume, bandwidth }),
    ));
    all.push(Box::new(Scaled {
        inner: RingAllReduce { volume, bandwidth },
        factor: 3.0,
    }));
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every model — including the α–β wrapped ones, the hierarchical
    /// composite and the plain combinators — is zero at n = 1 (a single
    /// worker has nobody to talk to) and non-negative everywhere, with
    /// zero latency rounds at n = 1 too.
    #[test]
    fn zero_at_one_nonnegative_everywhere(
        volume_mb in 0.1f64..1000.0,
        bw_gb in 0.1f64..100.0,
        latency_us in 0.0f64..1000.0,
        n in 1usize..500,
    ) {
        let volume = Bits::mega(volume_mb);
        let bandwidth = BitsPerSec::giga(bw_gb);
        let latency = Seconds::from_micros(latency_us);
        for m in all_models(volume, bandwidth, latency) {
            prop_assert!(m.time(1).is_zero(), "{} at n=1", m.name());
            prop_assert_eq!(m.rounds(1), 0.0, "{} rounds at n=1", m.name());
            prop_assert!(m.time(n).as_secs() >= 0.0);
            prop_assert!(m.rounds(n) >= 0.0);
        }
    }

    /// With latency zero, every α–β model degenerates *exactly* to its
    /// pure-bandwidth prediction — the backwards-compatibility guard for
    /// all pre-existing exhibit answers (the quickstart `n_opt == 9`
    /// doctest runs on exactly these latency-free models).
    #[test]
    fn zero_latency_degenerates_to_pure_bandwidth(
        volume_mb in 0.1f64..1000.0,
        bw_gb in 0.1f64..100.0,
        n in 1usize..500,
    ) {
        let volume = Bits::mega(volume_mb);
        let bandwidth = BitsPerSec::giga(bw_gb);
        let pure = models(volume, bandwidth);
        let wrapped = models(volume, bandwidth)
            .into_iter()
            .map(|inner| AlphaBeta { inner, latency: Seconds::zero() });
        for (p, w) in pure.iter().zip(wrapped) {
            prop_assert_eq!(
                w.time(n), p.time(n),
                "{} must be bit-identical at zero latency", p.name()
            );
        }
        // The hierarchical model over zero-latency links likewise reduces
        // to its bandwidth terms: 2·⌈log₂ m⌉·M/B_i + 2·(r−1)·(M/r)/B_u.
        let h = Hierarchical {
            volume,
            rack_size: 8,
            intra: LinkSpec::bandwidth_only(bandwidth),
            uplink: LinkSpec::bandwidth_only(bandwidth),
        };
        let m = 8.min(n);
        let r = n.div_ceil(8);
        let unit = volume.get() / bandwidth.get();
        let expected = if n <= 1 {
            0.0
        } else {
            2.0 * (m as f64).log2().ceil() * unit
                + if r > 1 { 2.0 * (r as f64 - 1.0) * unit / r as f64 } else { 0.0 }
        };
        prop_assert!((h.time(n).as_secs() - expected).abs() <= 1e-9 * expected.max(1.0));
    }

    /// Nonzero latency always adds time — `α·rounds(n)` on top of the
    /// bandwidth term — and the surcharge is exactly linear in `α`.
    #[test]
    fn latency_surcharge_is_rounds_times_alpha(
        volume_mb in 0.1f64..500.0,
        bw_gb in 0.1f64..50.0,
        latency_us in 1.0f64..1000.0,
        n in 2usize..300,
    ) {
        let volume = Bits::mega(volume_mb);
        let bandwidth = BitsPerSec::giga(bw_gb);
        let latency = Seconds::from_micros(latency_us);
        for inner in models(volume, bandwidth) {
            let rounds = inner.rounds(n);
            prop_assert!(rounds > 0.0, "{} must report rounds past n=1", inner.name());
            let base = inner.time(n).as_secs();
            let ab = AlphaBeta { inner, latency };
            let surcharge = ab.time(n).as_secs() - base;
            let expected = latency.as_secs() * rounds;
            prop_assert!(
                (surcharge - expected).abs() <= 1e-9 * expected.max(1e-12),
                "{}: surcharge {surcharge} vs α·rounds {expected}", ab.name()
            );
        }
    }

    /// Communication time is non-decreasing in the worker count for every
    /// master-coordinated collective (ring all-reduce included: its
    /// 2(n−1)/n factor grows toward 2). Halving/doubling is exempt by
    /// design: its non-power-of-two fold makes t(5) > t(8), like the real
    /// algorithm.
    #[test]
    fn monotone_in_workers(
        volume_mb in 0.1f64..1000.0,
        bw_gb in 0.1f64..100.0,
        n in 2usize..256,
    ) {
        let volume = Bits::mega(volume_mb);
        let bandwidth = BitsPerSec::giga(bw_gb);
        for m in models(volume, bandwidth) {
            if m.name() == "halving-doubling" {
                continue;
            }
            prop_assert!(
                m.time(n + 1).as_secs() >= m.time(n).as_secs() - 1e-12,
                "{} must not speed up when adding workers: n={n}",
                m.name()
            );
        }
        let h = Hierarchical {
            volume,
            rack_size: 8,
            intra: LinkSpec::bandwidth_only(bandwidth),
            uplink: LinkSpec::bandwidth_only(BitsPerSec::new(bandwidth.get() / 10.0)),
        };
        prop_assert!(h.time(n + 1).as_secs() >= h.time(n).as_secs() - 1e-12);
    }

    /// Time scales linearly in the payload volume (bandwidth-dominated
    /// models: doubling the bits doubles the time).
    #[test]
    fn linear_in_volume(
        volume_mb in 0.1f64..500.0,
        bw_gb in 0.1f64..100.0,
        n in 2usize..200,
        factor in 1.5f64..8.0,
    ) {
        let bandwidth = BitsPerSec::giga(bw_gb);
        let small = models(Bits::mega(volume_mb), bandwidth);
        let big = models(Bits::mega(volume_mb * factor), bandwidth);
        for (s, b) in small.iter().zip(&big) {
            let ts = s.time(n).as_secs();
            let tb = b.time(n).as_secs();
            prop_assert!(
                (tb - factor * ts).abs() <= 1e-9 * tb.max(1.0),
                "{}: {tb} != {factor}·{ts}",
                s.name()
            );
        }
    }

    /// Inverse-linear in bandwidth: twice the bandwidth halves the time.
    #[test]
    fn inverse_in_bandwidth(
        volume_mb in 0.1f64..500.0,
        bw_gb in 0.1f64..50.0,
        n in 2usize..200,
    ) {
        let volume = Bits::mega(volume_mb);
        let slow = models(volume, BitsPerSec::giga(bw_gb));
        let fast = models(volume, BitsPerSec::giga(2.0 * bw_gb));
        for (s, f) in slow.iter().zip(&fast) {
            let ts = s.time(n).as_secs();
            let tf = f.time(n).as_secs();
            prop_assert!((ts - 2.0 * tf).abs() <= 1e-9 * ts.max(1.0), "{}", s.name());
        }
    }

    /// Architecture ordering at scale: ring ≤ tree ≤ two-wave ≤ linear
    /// for large enough clusters (the paper's whole point about linear
    /// communication models).
    #[test]
    fn architecture_ordering_at_scale(
        volume_mb in 1.0f64..500.0,
        bw_gb in 0.1f64..50.0,
        n in 64usize..512,
    ) {
        let volume = Bits::mega(volume_mb);
        let bandwidth = BitsPerSec::giga(bw_gb);
        let ring = RingAllReduce { volume, bandwidth }.time(n);
        let tree = LogTree { volume, bandwidth }.time(n);
        let two_wave = TwoWaveAggregation { volume, bandwidth }.time(n);
        let linear = Linear { volume, bandwidth }.time(n);
        prop_assert!(ring <= tree);
        prop_assert!(tree <= two_wave);
        prop_assert!(two_wave <= linear);
    }
}
