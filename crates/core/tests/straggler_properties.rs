//! Property-based tests over the straggler-aware runtime subsystem: the
//! structural laws the analytic order-statistic model must satisfy
//! regardless of parameters — monotone in the worker count and in the
//! tail weight, bit-identical degeneracy at zero jitter, and the
//! drop-slowest-k mitigation never making the expected barrier worse.

use mlscale_core::hardware::{presets, Heterogeneity};
use mlscale_core::models::gd::{GdComm, GradientDescentModel};
use mlscale_core::straggler::{StragglerGdModel, StragglerModel};
use mlscale_core::units::FlopCount;
use proptest::prelude::*;

fn fig2_model() -> GradientDescentModel {
    GradientDescentModel {
        cost_per_example: FlopCount::new(6.0 * 12e6),
        batch_size: 60_000.0,
        params: 12e6,
        bits_per_param: 64,
        cluster: presets::spark_cluster(),
        comm: GdComm::Spark,
    }
}

/// The three stochastic families at a sampled tail weight.
fn models(scale: f64, sigma: f64) -> Vec<StragglerModel> {
    vec![
        StragglerModel::BoundedJitter { spread: scale },
        StragglerModel::ExponentialTail { mean: scale },
        StragglerModel::LogNormalTail {
            mu: scale.ln(),
            sigma,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `E[max of n draws]` is non-decreasing in `n` for every family: a
    /// bigger cluster can only wait longer at the barrier.
    #[test]
    fn expected_max_monotone_in_n(scale in 1e-3f64..10.0, sigma in 0.05f64..2.0) {
        for model in models(scale, sigma) {
            let mut prev = 0.0f64;
            for n in 1..=48usize {
                let e = model.expected_max(n);
                prop_assert!(
                    e >= prev - 1e-9 * prev.abs(),
                    "{model:?}: E[max] fell from {prev} to {e} at n={n}"
                );
                prev = e;
            }
        }
    }

    /// `E[max of j unit-exponential draws]` is exactly the harmonic
    /// number `H_j`, which the Euler–Maclaurin expansion pins to
    /// `ln j + γ + 1/(2j) − 1/(12j²) + O(j⁻⁴)`. With compensated
    /// summation the computed value must sit within a hair of the
    /// expansion all the way to `j = 10⁶` — an uncompensated forward sum
    /// drifts an order of magnitude further out by then.
    #[test]
    fn exponential_expected_max_tracks_harmonic_asymptotic(j in 10usize..=1_000_000) {
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        let h_j = StragglerModel::ExponentialTail { mean: 1.0 }.expected_max(j);
        let approx = (j as f64).ln() + EULER_GAMMA + 1.0 / (2.0 * j as f64);
        let truncation = 1.0 / (12.0 * (j as f64) * (j as f64));
        prop_assert!(
            (h_j - approx).abs() <= 1.5 * truncation + 1e-13,
            "H_{j} = {h_j} drifted {:e} from the asymptotic (truncation {truncation:e})",
            h_j - approx
        );
    }

    /// The expected barrier is monotone in the tail weight: scaling the
    /// jitter spread / exponential mean / lognormal sigma up never
    /// shortens the expected barrier.
    #[test]
    fn expected_barrier_monotone_in_tail_weight(
        scale in 1e-3f64..5.0,
        grow in 1.05f64..4.0,
        n in 2usize..40,
    ) {
        let pairs = [
            (
                StragglerModel::BoundedJitter { spread: scale },
                StragglerModel::BoundedJitter { spread: scale * grow },
            ),
            (
                StragglerModel::ExponentialTail { mean: scale },
                StragglerModel::ExponentialTail { mean: scale * grow },
            ),
            (
                StragglerModel::LogNormalTail { mu: -1.0, sigma: 0.3 * scale.min(3.0) },
                StragglerModel::LogNormalTail { mu: -1.0, sigma: 0.3 * scale.min(3.0) * grow },
            ),
        ];
        for (light, heavy) in pairs {
            let l = light.expected_max(n);
            let h = heavy.expected_max(n);
            prop_assert!(
                h >= l * (1.0 - 1e-9),
                "{light:?} -> {heavy:?} at n={n}: E[max] fell from {l} to {h}"
            );
        }
    }

    /// Zero-jitter configurations degenerate *bit-identically* to the
    /// deterministic model, for every worker count and mitigation level.
    #[test]
    fn zero_jitter_is_bit_identical(n in 1usize..64, k in 0usize..4) {
        let det = fig2_model();
        for straggler in [
            StragglerModel::Deterministic,
            StragglerModel::BoundedJitter { spread: 0.0 },
            StragglerModel::ExponentialTail { mean: 0.0 },
        ] {
            let wrapped = StragglerGdModel {
                inner: det,
                straggler,
                hetero: Heterogeneity::Uniform,
                backup_k: k,
            };
            prop_assert_eq!(
                wrapped.expected_strong_iteration_time(n),
                det.strong_iteration_time(n),
                "strong, {:?}, n={}, k={}", straggler, n, k
            );
            prop_assert_eq!(
                wrapped.expected_weak_per_instance_time(n),
                det.weak_per_instance_time(n),
                "weak, {:?}, n={}, k={}", straggler, n, k
            );
        }
    }

    /// Dropping the slowest `k+1` workers never yields a longer expected
    /// barrier than dropping `k` — backup workers cannot hurt.
    #[test]
    fn drop_slowest_k_never_increases_barrier(
        scale in 1e-3f64..5.0,
        sigma in 0.05f64..1.8,
        n in 3usize..32,
    ) {
        for model in models(scale, sigma) {
            let bases = vec![1.0; n];
            let mut prev = f64::INFINITY;
            for k in 0..n.min(5) {
                let e = model.expected_barrier(&bases, k).as_secs();
                prop_assert!(
                    e <= prev * (1.0 + 1e-9),
                    "{model:?} n={n}: E[barrier] rose from {prev} to {e} at k={k}"
                );
                prev = e;
            }
        }
    }

    /// The same mitigation law holds on heterogeneous clusters (the
    /// Poisson-binomial quadrature path).
    #[test]
    fn drop_slowest_k_never_increases_hetero_barrier(
        scale in 0.01f64..2.0,
        slow in 0.2f64..0.9,
        n in 3usize..24,
    ) {
        let model = StragglerModel::ExponentialTail { mean: scale };
        let bases: Vec<f64> = (0..n)
            .map(|w| if w % 3 == 0 { 1.0 / slow } else { 1.0 })
            .collect();
        let mut prev = f64::INFINITY;
        for k in 0..n.min(4) {
            let e = model.expected_barrier(&bases, k).as_secs();
            prop_assert!(
                e <= prev * (1.0 + 1e-6),
                "n={n} slow={slow}: E[barrier] rose from {prev} to {e} at k={k}"
            );
            prev = e;
        }
    }

    /// Heterogeneity is never free: degrading some workers' speed can only
    /// increase the expected barrier.
    #[test]
    fn slower_workers_never_shorten_the_barrier(
        count in 1usize..4,
        factor in 0.2f64..0.99,
        n in 4usize..32,
    ) {
        let uniform = StragglerGdModel {
            inner: fig2_model(),
            straggler: StragglerModel::ExponentialTail { mean: 0.5 },
            hetero: Heterogeneity::Uniform,
            backup_k: 0,
        };
        let degraded = StragglerGdModel {
            hetero: Heterogeneity::SlowWorkers { count, factor },
            ..uniform
        };
        let u = uniform.expected_strong_comp_time(n).as_secs();
        let d = degraded.expected_strong_comp_time(n).as_secs();
        prop_assert!(
            d >= u * (1.0 - 1e-6),
            "count={count} factor={factor} n={n}: barrier fell from {u} to {d}"
        );
    }
}
