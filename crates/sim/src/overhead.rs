//! Per-task execution-overhead models.
//!
//! The analytic framework deliberately ignores framework overhead; real
//! systems do not. The paper's own measurements show the consequences:
//! Spark's scheduling overhead bends the Fig 2 experimental curve away
//! from the model at larger `n`, and in Fig 4 "execution overhead takes
//! over with larger number of workers". The simulator injects these
//! effects through an [`OverheadModel`] sampled once per worker-task.

use mlscale_core::units::Seconds;
use rand::Rng;
use rand_distr::{Distribution, Exp, LogNormal};
use serde::{Deserialize, Serialize};

/// A distribution of per-task overhead added to each worker's compute
/// phase in every superstep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OverheadModel {
    /// No overhead: the simulator reproduces the analytic model exactly.
    None,
    /// Fixed per-task cost (e.g. task deserialisation).
    Constant {
        /// The fixed cost in seconds.
        seconds: f64,
    },
    /// Exponentially distributed delay with the given mean — a generic
    /// scheduling-jitter model.
    Exponential {
        /// Mean delay in seconds.
        mean: f64,
    },
    /// Log-normal delay (heavy-tailed stragglers), parameterised by the
    /// underlying normal's `mu`/`sigma` (seconds are `exp(N(mu, sigma))`).
    LogNormal {
        /// Location of the underlying normal.
        mu: f64,
        /// Scale of the underlying normal.
        sigma: f64,
    },
    /// Overhead growing linearly with the worker count:
    /// `base + per_worker·(n − 1)` seconds — the contention /
    /// synchronisation cost that dominates the Fig 4 experiment at high
    /// worker counts (GraphLab lock and scheduling pressure).
    PerWorkerLinear {
        /// Cost at `n = 1`.
        base: f64,
        /// Additional cost per extra worker.
        per_worker: f64,
    },
    /// Sum of a constant and an exponential component: a fixed scheduling
    /// cost plus jitter — a good stand-in for Spark task launch.
    ConstantPlusJitter {
        /// Fixed component in seconds.
        seconds: f64,
        /// Mean of the jitter component in seconds.
        jitter_mean: f64,
    },
}

impl OverheadModel {
    /// Samples the overhead for one task on a cluster of `n` workers.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Seconds {
        match *self {
            OverheadModel::None => Seconds::zero(),
            OverheadModel::Constant { seconds } => Seconds::new(seconds),
            OverheadModel::Exponential { mean } => {
                if mean == 0.0 {
                    return Seconds::zero();
                }
                // lint: allow(panic-free-lib): mean == 0 returned early above and spec validation rejects negative means
                let d = Exp::new(1.0 / mean).expect("mean must be positive");
                Seconds::new(d.sample(rng))
            }
            OverheadModel::LogNormal { mu, sigma } => {
                // lint: allow(panic-free-lib): spec validation rejects negative sigma before a LogNormal model is built
                let d = LogNormal::new(mu, sigma).expect("sigma must be non-negative");
                Seconds::new(d.sample(rng))
            }
            OverheadModel::PerWorkerLinear { base, per_worker } => {
                Seconds::new(base + per_worker * (n as f64 - 1.0))
            }
            OverheadModel::ConstantPlusJitter {
                seconds,
                jitter_mean,
            } => {
                let jitter = OverheadModel::Exponential { mean: jitter_mean }.sample(n, rng);
                Seconds::new(seconds) + jitter
            }
        }
    }

    /// Expected overhead for one task at `n` workers (used by tests and
    /// calibration).
    pub fn mean(&self, n: usize) -> Seconds {
        match *self {
            OverheadModel::None => Seconds::zero(),
            OverheadModel::Constant { seconds } => Seconds::new(seconds),
            OverheadModel::Exponential { mean } => Seconds::new(mean),
            OverheadModel::LogNormal { mu, sigma } => {
                Seconds::new((mu + sigma * sigma / 2.0).exp())
            }
            OverheadModel::PerWorkerLinear { base, per_worker } => {
                Seconds::new(base + per_worker * (n as f64 - 1.0))
            }
            OverheadModel::ConstantPlusJitter {
                seconds,
                jitter_mean,
            } => Seconds::new(seconds + jitter_mean),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    fn empirical_mean(model: OverheadModel, n: usize, samples: usize) -> f64 {
        let mut r = rng();
        (0..samples)
            .map(|_| model.sample(n, &mut r).as_secs())
            .sum::<f64>()
            / samples as f64
    }

    #[test]
    fn none_is_zero() {
        assert!(OverheadModel::None.sample(8, &mut rng()).is_zero());
        assert!(OverheadModel::None.mean(8).is_zero());
    }

    #[test]
    fn constant_is_exact() {
        let m = OverheadModel::Constant { seconds: 0.05 };
        assert_eq!(m.sample(4, &mut rng()).as_secs(), 0.05);
        assert_eq!(m.mean(4).as_secs(), 0.05);
    }

    #[test]
    fn exponential_mean_matches() {
        let m = OverheadModel::Exponential { mean: 0.2 };
        let emp = empirical_mean(m, 4, 20_000);
        assert!((emp - 0.2).abs() < 0.01, "empirical mean {emp}");
    }

    #[test]
    fn lognormal_mean_matches_closed_form() {
        let m = OverheadModel::LogNormal {
            mu: -3.0,
            sigma: 0.5,
        };
        let expected = (-3.0f64 + 0.125).exp();
        let emp = empirical_mean(m, 4, 50_000);
        assert!(
            (emp - expected).abs() / expected < 0.05,
            "empirical {emp} vs {expected}"
        );
        assert!((m.mean(4).as_secs() - expected).abs() < 1e-12);
    }

    #[test]
    fn per_worker_linear_grows() {
        let m = OverheadModel::PerWorkerLinear {
            base: 0.01,
            per_worker: 0.002,
        };
        assert_eq!(m.sample(1, &mut rng()).as_secs(), 0.01);
        assert!((m.sample(11, &mut rng()).as_secs() - 0.03).abs() < 1e-12);
        assert!(m.mean(80) > m.mean(8));
    }

    #[test]
    fn jitter_mean_is_sum() {
        let m = OverheadModel::ConstantPlusJitter {
            seconds: 0.1,
            jitter_mean: 0.05,
        };
        assert!((m.mean(2).as_secs() - 0.15).abs() < 1e-12);
        let emp = empirical_mean(m, 2, 20_000);
        assert!((emp - 0.15).abs() < 0.01);
        // Samples never go below the constant floor.
        let mut r = rng();
        for _ in 0..100 {
            assert!(m.sample(2, &mut r).as_secs() >= 0.1);
        }
    }

    #[test]
    fn zero_mean_exponential_is_zero() {
        let m = OverheadModel::Exponential { mean: 0.0 };
        assert!(m.sample(3, &mut rng()).is_zero());
    }
}
