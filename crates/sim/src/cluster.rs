//! Simulated cluster state: compute nodes with serialised NICs and a
//! point-to-point transfer primitive.
//!
//! The simulator models each node with three serially-reusable resources —
//! the CPU/GPU, the send side of its NIC and the receive side — tracked as
//! "next free" timestamps. A transfer between two nodes occupies the
//! sender's send NIC and the receiver's receive NIC for
//! `latency + bits/bandwidth`; contention (e.g. many workers pushing
//! gradients at one master) emerges from the resource serialisation rather
//! than from a formula, which is exactly what makes flat gathers linear
//! and tree exchanges logarithmic in the simulated timings.

use mlscale_core::hardware::ClusterSpec;
use mlscale_core::units::{FlopsRate, Seconds};

/// Node identifier within a simulation. Node `0` is the master/driver;
/// workers are `1..=n`.
pub type NodeId = usize;

/// Mutable per-node resource state.
#[derive(Debug, Clone, Copy, Default)]
struct NodeState {
    /// When the compute resource is next available (seconds).
    cpu_free: f64,
    /// When the send half of the NIC is next available.
    send_free: f64,
    /// When the receive half of the NIC is next available.
    recv_free: f64,
}

/// A simulated cluster of one master plus `workers` identical workers.
#[derive(Debug, Clone)]
pub struct SimCluster {
    spec: ClusterSpec,
    nodes: Vec<NodeState>,
    /// Per-node compute-speed multipliers (1.0 = nominal). Models
    /// heterogeneous hardware: a factor of 0.5 makes a node half as fast,
    /// a permanent straggler rather than a per-task jitter.
    speed_factors: Vec<f64>,
    /// True when the "network" is shared memory: transfers are free.
    shared_memory: bool,
}

impl SimCluster {
    /// Creates a cluster with `workers` workers (plus the implicit master,
    /// node 0).
    ///
    /// # Panics
    /// Panics when `workers == 0`.
    pub fn new(spec: ClusterSpec, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        let shared_memory = spec.bandwidth().get().is_infinite();
        Self {
            spec,
            nodes: vec![NodeState::default(); workers + 1],
            speed_factors: vec![1.0; workers + 1],
            shared_memory,
        }
    }

    /// Sets a node's compute-speed multiplier (heterogeneous hardware).
    ///
    /// # Panics
    /// Panics when the factor is not positive.
    pub fn set_speed_factor(&mut self, node: NodeId, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "speed factor must be positive"
        );
        self.speed_factors[node] = factor;
    }

    /// A node's compute-speed multiplier.
    pub fn speed_factor(&self, node: NodeId) -> f64 {
        self.speed_factors[node]
    }

    /// Number of workers (excluding the master).
    pub fn workers(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Effective per-node compute rate.
    pub fn flops(&self) -> FlopsRate {
        self.spec.flops()
    }

    /// Whether transfers are free (shared memory).
    pub fn is_shared_memory(&self) -> bool {
        self.shared_memory
    }

    /// Resets all resource clocks to zero (start of a fresh measurement).
    pub fn reset(&mut self) {
        for n in &mut self.nodes {
            *n = NodeState::default();
        }
    }

    /// Schedules `flops` of compute on `node`, not starting before
    /// `earliest`. Returns the completion time.
    pub fn compute(&mut self, node: NodeId, flops: f64, earliest: Seconds) -> Seconds {
        assert!(flops >= 0.0);
        let rate = self.spec.flops().get() * self.speed_factors[node];
        let state = &mut self.nodes[node];
        let start = state.cpu_free.max(earliest.as_secs());
        state.cpu_free = start + flops / rate;
        Seconds::new(state.cpu_free)
    }

    /// Schedules an extra busy period (overhead) on a node's CPU.
    pub fn occupy(&mut self, node: NodeId, duration: Seconds, earliest: Seconds) -> Seconds {
        let state = &mut self.nodes[node];
        let start = state.cpu_free.max(earliest.as_secs());
        state.cpu_free = start + duration.as_secs();
        Seconds::new(state.cpu_free)
    }

    /// Kills whatever is still running on a node's CPU past `t`, pulling
    /// its next-free clock back to `t` — speculative-execution semantics:
    /// when a straggling task's shard has been covered by a backup worker,
    /// the original attempt is cancelled rather than left running into the
    /// next superstep. No-op when the CPU is already free by `t`.
    pub fn truncate_compute(&mut self, node: NodeId, t: Seconds) {
        let state = &mut self.nodes[node];
        state.cpu_free = state.cpu_free.min(t.as_secs());
    }

    /// The rack a node belongs to (rack 0 on flat clusters).
    pub fn rack_of(&self, node: NodeId) -> usize {
        self.spec.rack_of(node)
    }

    /// Workers per rack, when the cluster has a rack topology.
    pub fn rack_size(&self) -> Option<usize> {
        self.spec.rack.map(|r| r.nodes_per_rack)
    }

    /// Schedules a point-to-point transfer of `bits` from `from` to `to`,
    /// not starting before `earliest`. Occupies both NIC halves for
    /// `latency + bits/bandwidth` of the link joining the two nodes — the
    /// intra-rack link within a rack, the uplink across racks on a
    /// cluster with a rack topology; returns the completion time. Free
    /// under shared memory.
    ///
    /// # Panics
    /// Panics on a self-transfer — callers should skip those.
    pub fn transfer(&mut self, from: NodeId, to: NodeId, bits: f64, earliest: Seconds) -> Seconds {
        assert_ne!(from, to, "self-transfer is a scheduling bug");
        assert!(bits >= 0.0);
        if self.shared_memory {
            return earliest;
        }
        let link = self.spec.link_between(from, to);
        let start = self.nodes[from]
            .send_free
            .max(self.nodes[to].recv_free)
            .max(earliest.as_secs());
        let duration = link.latency.as_secs() + bits / link.bandwidth.get();
        let done = start + duration;
        self.nodes[from].send_free = done;
        self.nodes[to].recv_free = done;
        Seconds::new(done)
    }

    /// The latest completion time across every resource of every node —
    /// the makespan of everything scheduled so far.
    pub fn makespan(&self) -> Seconds {
        let max = self
            .nodes
            .iter()
            .map(|n| n.cpu_free.max(n.send_free).max(n.recv_free))
            .fold(0.0, f64::max);
        Seconds::new(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscale_core::hardware::{presets, LinkSpec, NodeSpec};
    use mlscale_core::units::BitsPerSec;

    fn cluster(workers: usize) -> SimCluster {
        let spec = ClusterSpec::new(
            NodeSpec::new(FlopsRate::giga(1.0), 1.0),
            LinkSpec::bandwidth_only(BitsPerSec::giga(1.0)),
        );
        SimCluster::new(spec, workers)
    }

    #[test]
    fn compute_serialises_on_a_node() {
        let mut c = cluster(2);
        let t1 = c.compute(1, 1e9, Seconds::zero()); // 1 second
        let t2 = c.compute(1, 1e9, Seconds::zero()); // queued behind
        assert!((t1.as_secs() - 1.0).abs() < 1e-12);
        assert!((t2.as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn compute_parallel_across_nodes() {
        let mut c = cluster(2);
        let t1 = c.compute(1, 1e9, Seconds::zero());
        let t2 = c.compute(2, 1e9, Seconds::zero());
        assert_eq!(t1, t2);
    }

    #[test]
    fn transfer_duration_is_bits_over_bandwidth() {
        let mut c = cluster(2);
        let t = c.transfer(1, 0, 5e8, Seconds::zero());
        assert!((t.as_secs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn receiver_nic_serialises_flat_gather() {
        // Three workers sending to the master serialise on its recv NIC:
        // completion = 3 · bits/B even though sends could start together.
        let mut c = cluster(3);
        let mut last = Seconds::zero();
        for w in 1..=3 {
            last = c.transfer(w, 0, 1e9, Seconds::zero());
        }
        assert!((last.as_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_pairs_transfer_in_parallel() {
        let mut c = cluster(4);
        let t1 = c.transfer(1, 2, 1e9, Seconds::zero());
        let t2 = c.transfer(3, 4, 1e9, Seconds::zero());
        assert_eq!(t1, t2);
        assert!((t1.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn latency_added_per_message() {
        let spec = ClusterSpec::new(
            NodeSpec::new(FlopsRate::giga(1.0), 1.0),
            LinkSpec::new(BitsPerSec::giga(1.0), Seconds::from_millis(1.0)),
        );
        let mut c = SimCluster::new(spec, 2);
        let t = c.transfer(1, 2, 1e6, Seconds::zero());
        assert!((t.as_secs() - (0.001 + 0.001)).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_transfers_are_free() {
        let mut c = SimCluster::new(presets::dl980(), 4);
        assert!(c.is_shared_memory());
        let t = c.transfer(1, 0, 1e12, Seconds::new(2.5));
        assert_eq!(t.as_secs(), 2.5);
    }

    #[test]
    fn earliest_constrains_start() {
        let mut c = cluster(2);
        let t = c.compute(1, 1e9, Seconds::new(5.0));
        assert!((t.as_secs() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_tracks_all_resources() {
        let mut c = cluster(2);
        c.compute(1, 2e9, Seconds::zero());
        c.transfer(2, 0, 1e9, Seconds::zero());
        assert!((c.makespan().as_secs() - 2.0).abs() < 1e-12);
        c.reset();
        assert!(c.makespan().is_zero());
    }

    #[test]
    fn slow_node_takes_proportionally_longer() {
        let mut c = cluster(2);
        c.set_speed_factor(2, 0.5);
        let fast = c.compute(1, 1e9, Seconds::zero());
        let slow = c.compute(2, 1e9, Seconds::zero());
        assert!((fast.as_secs() - 1.0).abs() < 1e-12);
        assert!((slow.as_secs() - 2.0).abs() < 1e-12);
        assert_eq!(c.speed_factor(2), 0.5);
    }

    #[test]
    #[should_panic(expected = "speed factor")]
    fn zero_speed_factor_rejected() {
        let mut c = cluster(1);
        c.set_speed_factor(1, 0.0);
    }

    #[test]
    #[should_panic(expected = "self-transfer")]
    fn self_transfer_panics() {
        let mut c = cluster(2);
        let _ = c.transfer(1, 1, 1.0, Seconds::zero());
    }

    #[test]
    fn cross_rack_transfers_use_the_uplink() {
        use mlscale_core::hardware::RackSpec;
        let spec = ClusterSpec::new(
            NodeSpec::new(FlopsRate::giga(1.0), 1.0),
            LinkSpec::bandwidth_only(BitsPerSec::giga(10.0)),
        )
        .with_racks(RackSpec::new(
            2,
            LinkSpec::bandwidth_only(BitsPerSec::giga(1.0)),
        ));
        let mut c = SimCluster::new(spec, 4);
        // Workers 1,2 in rack 0; 3,4 in rack 1.
        assert_eq!(c.rack_of(1), 0);
        assert_eq!(c.rack_of(3), 1);
        let intra = c.transfer(1, 2, 1e9, Seconds::zero());
        let inter = c.transfer(3, 1, 1e9, Seconds::zero());
        assert!((intra.as_secs() - 0.1).abs() < 1e-12, "10 Gbit/s intra");
        assert!((inter.as_secs() - 1.0).abs() < 1e-12, "1 Gbit/s uplink");
    }

    #[test]
    fn occupy_blocks_cpu() {
        let mut c = cluster(1);
        c.occupy(1, Seconds::new(0.5), Seconds::zero());
        let t = c.compute(1, 1e9, Seconds::zero());
        assert!((t.as_secs() - 1.5).abs() < 1e-12);
    }
}
