//! # mlscale-sim — discrete-event BSP cluster simulator
//!
//! The paper validated its models against a Spark cluster, a GPU cluster
//! and an 80-core shared-memory server. This crate is the reproduction's
//! testbed substitute: a deterministic simulator that executes the same
//! BSP schedules the models price, with the system effects the analytic
//! framework deliberately omits:
//!
//! * [`cluster`] — nodes with serially-reusable CPU and NIC halves; a
//!   point-to-point transfer primitive from which contention *emerges*
//!   (flat gathers serialise on the master NIC, trees parallelise);
//! * [`collectives`] — flat / binomial-tree / torrent broadcast, flat /
//!   tree / Spark-two-wave aggregation, ring all-reduce, realised as
//!   message schedules;
//! * [`overhead`] — per-task scheduling-cost models (constant,
//!   exponential, log-normal stragglers, per-worker contention);
//! * [`bsp`] — executes per-superstep per-worker flop loads + collective
//!   phases and reports per-iteration wall times (the "experimental"
//!   curves of the reproduction), with per-worker straggler-delay draws,
//!   heterogeneous compute speeds and the drop-slowest-k backup-worker
//!   mitigation ([`bsp::StragglerSim`]);
//! * [`paramserver`] — asynchronous parameter-server mode (the paper's
//!   future-work direction), reporting throughput and gradient staleness.
//!
//! ```
//! use mlscale_core::hardware::presets;
//! use mlscale_sim::bsp::{simulate, BspConfig, BspProgram, CommPhase, SuperstepSpec};
//! use mlscale_sim::overhead::OverheadModel;
//!
//! let config = BspConfig {
//!     cluster: presets::spark_cluster(),
//!     overhead: OverheadModel::None,
//!     seed: 42,
//! };
//! let program = BspProgram {
//!     supersteps: vec![SuperstepSpec::even(1e12, 4, CommPhase::None)],
//!     iterations: 2,
//! };
//! let report = simulate(&program, &config, 4);
//! assert_eq!(report.iteration_times.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bsp;
pub mod cluster;
pub mod collectives;
pub mod overhead;
pub mod paramserver;

pub use bsp::{
    simulate, simulate_with_speeds, simulate_with_stragglers, BspConfig, BspProgram, BspReport,
    CommPhase, StragglerSim, SuperstepSpec,
};
pub use cluster::SimCluster;
pub use collectives::{BroadcastKind, ReduceKind};
pub use overhead::OverheadModel;
