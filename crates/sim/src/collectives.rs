//! Collective communication patterns realised as message schedules over
//! the [`SimCluster`] transfer primitive.
//!
//! Each collective takes a payload size and a start time and returns the
//! time at which every participant holds the result. The asymptotic shapes
//! the paper discusses emerge from NIC serialisation rather than from
//! closed-form formulas:
//!
//! * flat broadcast/gather → `Θ(n)` (master NIC serialises);
//! * binary-tree broadcast/reduce → `Θ(log₂ n)`;
//! * Spark's two-wave aggregation → `Θ(√n)` (members serialise on each
//!   wave-leader's receive NIC);
//! * ring all-reduce → `Θ(1)` in `n` (2·(n−1) chunk steps of size
//!   `bits/n`);
//! * recursive halving/doubling all-reduce → ring's volume in `2·log₂ n`
//!   pairwise-exchange rounds;
//! * hierarchical all-reduce → intra-rack tree + inter-rack leader ring,
//!   routed over the cluster's two link tiers.
//!
//! Because [`SimCluster::transfer`] charges `α + bits/B` per message, each
//! schedule is the discrete-event twin of the corresponding α–β analytic
//! model in `mlscale_core::comm` — `tests/model_vs_simulation.rs` pins the
//! agreement.

use crate::cluster::{NodeId, SimCluster};
use mlscale_core::units::Seconds;
use serde::{Deserialize, Serialize};

/// Broadcast patterns: master (node 0) to all workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BroadcastKind {
    /// Master sends to each worker in turn.
    Flat,
    /// Binomial tree: informed nodes re-send; `⌈log₂(n+1)⌉` rounds.
    Tree,
    /// Spark's TorrentBroadcast: block-swarming, modelled as a binomial
    /// tree over the full payload (the paper's `log₂ n` rounds).
    Torrent,
}

/// Aggregation patterns: all workers to the master (node 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReduceKind {
    /// Every worker sends directly to the master.
    Flat,
    /// Binomial-tree pairwise reduction.
    Tree,
    /// Spark `treeAggregate` with depth 2: `⌈√n⌉` wave leaders aggregate
    /// their groups, then forward to the driver — the paper's
    /// `2·⌈√n⌉`-transfer model.
    TwoWave,
}

/// Broadcasts `bits` from the master to workers `1..=n`; returns the time
/// the last worker receives it.
pub fn broadcast(
    cluster: &mut SimCluster,
    kind: BroadcastKind,
    bits: f64,
    start: Seconds,
) -> Seconds {
    let n = cluster.workers();
    if n == 0 {
        return start;
    }
    match kind {
        BroadcastKind::Flat => {
            let mut last = start;
            for w in 1..=n {
                last = last.max(cluster.transfer(0, w, bits, start));
            }
            last
        }
        BroadcastKind::Tree | BroadcastKind::Torrent => {
            let members: Vec<NodeId> = (0..=n).collect();
            tree_broadcast_among(cluster, &members, bits, start)
        }
    }
}

/// Binomial-tree broadcast rooted at `members[0]` (which holds the payload
/// at `start`): the informed set doubles each round until every member is
/// reached. Returns the time the last member is informed.
fn tree_broadcast_among(
    cluster: &mut SimCluster,
    members: &[NodeId],
    bits: f64,
    start: Seconds,
) -> Seconds {
    let mut informed: Vec<(NodeId, Seconds)> = vec![(members[0], start)];
    let mut next_idx = 1usize;
    let mut last = start;
    while next_idx < members.len() {
        let mut newly: Vec<(NodeId, Seconds)> = Vec::new();
        for &(src, ready) in &informed {
            if next_idx >= members.len() {
                break;
            }
            let dst = members[next_idx];
            next_idx += 1;
            let done = cluster.transfer(src, dst, bits, ready);
            newly.push((dst, done));
            last = last.max(done);
        }
        informed.extend(newly);
    }
    last
}

/// Pairwise binomial-tree reduction among `holders`: each round the even-
/// indexed holders receive from their odd-indexed neighbours until one
/// holder — the first element — carries the full aggregate. Returns that
/// root and the time it is ready.
fn tree_reduce_among(
    cluster: &mut SimCluster,
    mut holders: Vec<(NodeId, Seconds)>,
    bits: f64,
) -> (NodeId, Seconds) {
    while holders.len() > 1 {
        let mut next: Vec<(NodeId, Seconds)> = Vec::with_capacity(holders.len().div_ceil(2));
        for pair in holders.chunks(2) {
            match pair {
                [a] => next.push(*a),
                [dst, src] => {
                    let at = cluster.transfer(src.0, dst.0, bits, src.1.max(dst.1));
                    next.push((dst.0, at));
                }
                // lint: allow(panic-free-lib): chunks(2) only yields 1- or 2-element slices
                _ => unreachable!(),
            }
        }
        holders = next;
    }
    holders[0]
}

/// Reduces `bits`-sized contributions from workers `1..=n` (each ready at
/// `ready[w-1]`) onto the master; returns the time the master holds the
/// full aggregate.
pub fn reduce(cluster: &mut SimCluster, kind: ReduceKind, bits: f64, ready: &[Seconds]) -> Seconds {
    let n = cluster.workers();
    assert_eq!(ready.len(), n, "need a readiness time per worker");
    if n == 0 {
        return Seconds::zero();
    }
    match kind {
        ReduceKind::Flat => {
            let mut last = Seconds::zero();
            for w in 1..=n {
                last = last.max(cluster.transfer(w, 0, bits, ready[w - 1]));
            }
            last
        }
        ReduceKind::Tree => {
            // Pairwise binomial reduction among workers, then one transfer
            // to the master.
            let holders: Vec<(NodeId, Seconds)> = (1..=n).map(|w| (w, ready[w - 1])).collect();
            let (w, at) = tree_reduce_among(cluster, holders, bits);
            cluster.transfer(w, 0, bits, at)
        }
        ReduceKind::TwoWave => {
            // Wave 1: ⌈√n⌉ leaders; each group member sends to its leader.
            let leaders_count = (n as f64).sqrt().ceil() as usize;
            let leaders: Vec<NodeId> = (1..=leaders_count.min(n)).collect();
            let mut leader_done: Vec<Seconds> = leaders.iter().map(|&l| ready[l - 1]).collect();
            for w in 1..=n {
                if leaders.contains(&w) {
                    continue;
                }
                let li = (w - 1) % leaders.len();
                let done = cluster.transfer(w, leaders[li], bits, ready[w - 1]);
                leader_done[li] = leader_done[li].max(done);
            }
            // Wave 2: leaders forward their partial aggregates to the
            // driver (serialising on its receive NIC).
            let mut last = Seconds::zero();
            for (li, &l) in leaders.iter().enumerate() {
                last = last.max(cluster.transfer(l, 0, bits, leader_done[li]));
            }
            last
        }
    }
}

/// Ring all-reduce among workers `1..=n`: `2·(n−1)` steps exchanging
/// `bits/n` chunks around the ring (reduce-scatter then all-gather);
/// returns the time every worker holds the result.
pub fn ring_all_reduce(cluster: &mut SimCluster, bits: f64, ready: &[Seconds]) -> Seconds {
    let n = cluster.workers();
    assert_eq!(ready.len(), n, "need a readiness time per worker");
    if n <= 1 {
        return ready.first().copied().unwrap_or(Seconds::zero());
    }
    let chunk = bits / n as f64;
    let mut times: Vec<Seconds> = ready.to_vec();
    for _step in 0..(2 * (n - 1)) {
        let mut next = times.clone();
        for (w, &ready_at) in times.iter().enumerate() {
            let dst = (w + 1) % n;
            let done = cluster.transfer(w + 1, dst + 1, chunk, ready_at);
            next[dst] = next[dst].max(done);
        }
        times = next;
    }
    times.iter().copied().fold(Seconds::zero(), Seconds::max)
}

/// Recursive halving/doubling all-reduce among workers `1..=n`
/// (Rabenseifner's algorithm): reduce-scatter by pairwise exchanges at
/// halving distances, then all-gather by the reverse schedule. Extra
/// workers beyond the largest power of two fold their vectors into
/// partners first and receive the result last — the discrete-event twin of
/// `mlscale_core::comm::HalvingDoubling`.
pub fn halving_doubling_all_reduce(
    cluster: &mut SimCluster,
    bits: f64,
    ready: &[Seconds],
) -> Seconds {
    let n = cluster.workers();
    assert_eq!(ready.len(), n, "need a readiness time per worker");
    if n <= 1 {
        return ready.first().copied().unwrap_or(Seconds::zero());
    }
    let p = 1usize << n.ilog2();
    let extra = n - p;
    let mut times: Vec<Seconds> = ready.to_vec();

    // Fold-in: worker p+i sends its full vector to worker i.
    for i in 1..=extra {
        let (src, dst) = (p + i, i);
        let at = times[src - 1].max(times[dst - 1]);
        times[dst - 1] = cluster.transfer(src, dst, bits, at);
    }

    // Pairwise exchange rounds among 1..=p. Halving: distance p/2 with
    // bits/2 chunks down to distance 1; doubling reverses the schedule.
    let mut schedule: Vec<(usize, f64)> = Vec::new();
    let mut dist = p / 2;
    let mut chunk = bits / 2.0;
    while dist >= 1 {
        schedule.push((dist, chunk));
        dist /= 2;
        chunk /= 2.0;
    }
    let gather: Vec<(usize, f64)> = schedule.iter().rev().copied().collect();
    schedule.extend(gather);
    for (dist, chunk) in schedule {
        let snapshot = times.clone();
        for w in 1..=p {
            // Lower half of each 2·dist block pairs upward.
            if ((w - 1) / dist) % 2 != 0 {
                continue;
            }
            let partner = w + dist;
            let at = snapshot[w - 1].max(snapshot[partner - 1]);
            // Full-duplex exchange: both directions run concurrently.
            let d1 = cluster.transfer(w, partner, chunk, at);
            let d2 = cluster.transfer(partner, w, chunk, at);
            times[partner - 1] = d1;
            times[w - 1] = d2;
        }
    }

    // Unfold: worker i returns the full result to worker p+i.
    for i in 1..=extra {
        let (src, dst) = (i, p + i);
        times[dst - 1] = cluster.transfer(src, dst, bits, times[src - 1]);
    }
    times.iter().copied().fold(Seconds::zero(), Seconds::max)
}

/// Two-tier hierarchical all-reduce among workers `1..=n` over the
/// cluster's rack topology: binomial-tree reduce to each rack's leader on
/// the intra-rack links, ring all-reduce of `bits/r` chunks among the `r`
/// leaders on the uplinks, binomial-tree broadcast back down. Each phase
/// starts at a barrier, matching the analytic
/// `mlscale_core::comm::Hierarchical` composite. Flat clusters (no rack
/// topology) run as one rack: tree reduce + broadcast, no ring.
pub fn hierarchical_all_reduce(cluster: &mut SimCluster, bits: f64, ready: &[Seconds]) -> Seconds {
    let n = cluster.workers();
    assert_eq!(ready.len(), n, "need a readiness time per worker");
    if n <= 1 {
        return ready.first().copied().unwrap_or(Seconds::zero());
    }
    let rack_size = cluster.rack_size().unwrap_or(n).min(n);
    let racks = n.div_ceil(rack_size);
    let rack_members =
        |k: usize| -> Vec<NodeId> { (k * rack_size + 1..=((k + 1) * rack_size).min(n)).collect() };

    // Phase 1: tree-reduce every rack onto its leader (the lowest id).
    let mut leader_done: Vec<Seconds> = Vec::with_capacity(racks);
    for k in 0..racks {
        let members = rack_members(k);
        let holders: Vec<(NodeId, Seconds)> = members.iter().map(|&w| (w, ready[w - 1])).collect();
        leader_done.push(tree_reduce_among(cluster, holders, bits).1);
    }
    let barrier = leader_done
        .iter()
        .copied()
        .fold(Seconds::zero(), Seconds::max);

    // Phase 2: ring all-reduce among the rack leaders over the uplinks.
    let mut end = barrier;
    if racks > 1 {
        let leaders: Vec<NodeId> = (0..racks).map(|k| k * rack_size + 1).collect();
        let chunk = bits / racks as f64;
        let mut times = vec![barrier; racks];
        for _step in 0..(2 * (racks - 1)) {
            let snapshot = times.clone();
            for (i, &at) in snapshot.iter().enumerate() {
                let j = (i + 1) % racks;
                let done = cluster.transfer(leaders[i], leaders[j], chunk, at);
                times[j] = times[j].max(done);
            }
        }
        end = times.iter().copied().fold(Seconds::zero(), Seconds::max);
    }

    // Phase 3: tree-broadcast the result inside every rack.
    let mut last = end;
    for k in 0..racks {
        let members = rack_members(k);
        last = last.max(tree_broadcast_among(cluster, &members, bits, end));
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscale_core::hardware::{ClusterSpec, LinkSpec, NodeSpec, RackSpec};
    use mlscale_core::units::{BitsPerSec, FlopsRate};

    fn cluster(workers: usize) -> SimCluster {
        let spec = ClusterSpec::new(
            NodeSpec::new(FlopsRate::giga(1.0), 1.0),
            LinkSpec::bandwidth_only(BitsPerSec::giga(1.0)),
        );
        SimCluster::new(spec, workers)
    }

    const GBIT: f64 = 1e9; // one second per transfer at 1 Gbit/s

    #[test]
    fn flat_broadcast_is_linear() {
        let mut c = cluster(8);
        let t = broadcast(&mut c, BroadcastKind::Flat, GBIT, Seconds::zero());
        assert!((t.as_secs() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn tree_broadcast_is_logarithmic() {
        // 8 workers + master: informed set 1→2→4→8→9: 4 rounds.
        let mut c = cluster(8);
        let t = broadcast(&mut c, BroadcastKind::Tree, GBIT, Seconds::zero());
        assert!((t.as_secs() - 4.0).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn tree_broadcast_single_worker_one_round() {
        let mut c = cluster(1);
        let t = broadcast(&mut c, BroadcastKind::Tree, GBIT, Seconds::zero());
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flat_reduce_serialises_on_master() {
        let mut c = cluster(6);
        let ready = vec![Seconds::zero(); 6];
        let t = reduce(&mut c, ReduceKind::Flat, GBIT, &ready);
        assert!((t.as_secs() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn tree_reduce_is_logarithmic() {
        // 8 workers: 3 pairwise rounds + 1 transfer to master = 4.
        let mut c = cluster(8);
        let ready = vec![Seconds::zero(); 8];
        let t = reduce(&mut c, ReduceKind::Tree, GBIT, &ready);
        assert!((t.as_secs() - 4.0).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn two_wave_scales_as_sqrt() {
        // n=16, 4 leaders, 12 members spread 3 per leader: wave 1 takes 3
        // serialised receives, wave 2 takes 4 serialised sends to master.
        let mut c = cluster(16);
        let ready = vec![Seconds::zero(); 16];
        let t = reduce(&mut c, ReduceKind::TwoWave, GBIT, &ready);
        assert!((t.as_secs() - 7.0).abs() < 1e-9, "got {t}");
        // Compare shapes at larger n: two-wave ≪ flat, > tree.
        let mut c2 = cluster(64);
        let ready2 = vec![Seconds::zero(); 64];
        let t2 = reduce(&mut c2, ReduceKind::TwoWave, GBIT, &ready2);
        assert!(t2.as_secs() < 64.0 / 2.0);
        assert!(t2.as_secs() > (64f64).log2());
    }

    #[test]
    fn ring_all_reduce_near_constant() {
        // Total time ≈ 2·(n−1)/n · bits/B regardless of n.
        for n in [2usize, 4, 16, 32] {
            let mut c = cluster(n);
            let ready = vec![Seconds::zero(); n];
            let t = ring_all_reduce(&mut c, GBIT, &ready);
            let expected = 2.0 * (n as f64 - 1.0) / n as f64;
            assert!(
                (t.as_secs() - expected).abs() < 1e-6,
                "n={n}: got {t}, expected {expected}"
            );
        }
    }

    #[test]
    fn ring_single_worker_is_free() {
        let mut c = cluster(1);
        let t = ring_all_reduce(&mut c, GBIT, &[Seconds::new(0.5)]);
        assert_eq!(t.as_secs(), 0.5);
    }

    #[test]
    fn halving_doubling_matches_alpha_beta_form() {
        // Power of two: 2·log₂ n rounds, 2·(n−1)/n·bits volume.
        for n in [2usize, 4, 8, 16, 32] {
            let mut c = cluster(n);
            let ready = vec![Seconds::zero(); n];
            let t = halving_doubling_all_reduce(&mut c, GBIT, &ready);
            let expected = 2.0 * (n as f64 - 1.0) / n as f64;
            assert!(
                (t.as_secs() - expected).abs() < 1e-9,
                "n={n}: got {t}, expected {expected}"
            );
        }
    }

    #[test]
    fn halving_doubling_non_power_folds_extras() {
        // n=5: fold (1 s) + exchange among 4 (1.5 s) + unfold (1 s).
        let mut c = cluster(5);
        let ready = vec![Seconds::zero(); 5];
        let t = halving_doubling_all_reduce(&mut c, GBIT, &ready);
        assert!((t.as_secs() - 3.5).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn halving_doubling_single_worker_is_free() {
        let mut c = cluster(1);
        let t = halving_doubling_all_reduce(&mut c, GBIT, &[Seconds::new(0.25)]);
        assert_eq!(t.as_secs(), 0.25);
    }

    fn racked_cluster(workers: usize, rack_size: usize) -> SimCluster {
        let spec = ClusterSpec::new(
            NodeSpec::new(FlopsRate::giga(1.0), 1.0),
            LinkSpec::bandwidth_only(BitsPerSec::giga(10.0)),
        )
        .with_racks(RackSpec::new(
            rack_size,
            LinkSpec::bandwidth_only(BitsPerSec::giga(1.0)),
        ));
        SimCluster::new(spec, workers)
    }

    #[test]
    fn hierarchical_matches_phase_sum() {
        // 16 workers in racks of 4: tree reduce ⌈log₂ 4⌉ = 2 rounds at
        // 0.1 s, leader ring 2·3 steps of (1/4) s, tree broadcast 2 rounds.
        let mut c = racked_cluster(16, 4);
        let ready = vec![Seconds::zero(); 16];
        let t = hierarchical_all_reduce(&mut c, GBIT, &ready);
        let expected = 2.0 * 0.1 + 6.0 * 0.25 + 2.0 * 0.1;
        assert!((t.as_secs() - expected).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn hierarchical_flat_cluster_is_single_rack_tree() {
        // No rack topology: one rack of 8, ⌈log₂ 8⌉ = 3 rounds each way
        // at 1 s per transfer, no ring.
        let mut c = cluster(8);
        let ready = vec![Seconds::zero(); 8];
        let t = hierarchical_all_reduce(&mut c, GBIT, &ready);
        assert!((t.as_secs() - 6.0).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn hierarchical_keeps_bulk_traffic_off_the_uplink() {
        // Same payload, same worker count: hierarchical over racks beats
        // a flat tree exchange forced across the slow uplink-class links.
        let n = 32;
        let mut hier = racked_cluster(n, 8);
        let ready = vec![Seconds::zero(); n];
        let t_hier = hierarchical_all_reduce(&mut hier, GBIT, &ready);
        let mut flat = cluster(n); // every link 1 Gbit/s ≈ the uplink
        let ready2 = vec![Seconds::zero(); n];
        let up = reduce(&mut flat, ReduceKind::Tree, GBIT, &ready2);
        let t_flat = broadcast(&mut flat, BroadcastKind::Tree, GBIT, up);
        assert!(
            t_hier < t_flat,
            "hierarchical {t_hier} must beat flat {t_flat}"
        );
    }

    #[test]
    fn hierarchical_respects_readiness() {
        let mut c = racked_cluster(4, 2);
        let mut ready = vec![Seconds::zero(); 4];
        ready[3] = Seconds::new(5.0);
        let t = hierarchical_all_reduce(&mut c, GBIT, &ready);
        assert!(t.as_secs() >= 5.0);
    }

    #[test]
    #[should_panic(expected = "readiness time per worker")]
    fn halving_doubling_mismatched_ready_rejected() {
        let mut c = cluster(3);
        let _ = halving_doubling_all_reduce(&mut c, GBIT, &[Seconds::zero()]);
    }

    #[test]
    fn reduce_respects_readiness() {
        let mut c = cluster(2);
        let ready = vec![Seconds::new(10.0), Seconds::zero()];
        let t = reduce(&mut c, ReduceKind::Flat, GBIT, &ready);
        assert!(t.as_secs() >= 11.0);
    }

    #[test]
    fn torrent_matches_tree_shape() {
        let mut c1 = cluster(16);
        let mut c2 = cluster(16);
        let t1 = broadcast(&mut c1, BroadcastKind::Torrent, GBIT, Seconds::zero());
        let t2 = broadcast(&mut c2, BroadcastKind::Tree, GBIT, Seconds::zero());
        assert_eq!(t1, t2);
    }

    #[test]
    fn shared_memory_collectives_are_instant() {
        use mlscale_core::hardware::presets;
        let mut c = SimCluster::new(presets::dl980(), 8);
        let t = broadcast(&mut c, BroadcastKind::Flat, 1e12, Seconds::zero());
        assert!(t.is_zero());
        let ready = vec![Seconds::new(1.0); 8];
        let t = reduce(&mut c, ReduceKind::TwoWave, 1e12, &ready);
        assert!((t.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "readiness time per worker")]
    fn mismatched_ready_rejected() {
        let mut c = cluster(3);
        let _ = reduce(&mut c, ReduceKind::Flat, GBIT, &[Seconds::zero()]);
    }
}
