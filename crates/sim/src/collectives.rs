//! Collective communication patterns realised as message schedules over
//! the [`SimCluster`] transfer primitive.
//!
//! Each collective takes a payload size and a start time and returns the
//! time at which every participant holds the result. The asymptotic shapes
//! the paper discusses emerge from NIC serialisation rather than from
//! closed-form formulas:
//!
//! * flat broadcast/gather → `Θ(n)` (master NIC serialises);
//! * binary-tree broadcast/reduce → `Θ(log₂ n)`;
//! * Spark's two-wave aggregation → `Θ(√n)` (members serialise on each
//!   wave-leader's receive NIC);
//! * ring all-reduce → `Θ(1)` in `n` (2·(n−1) chunk steps of size
//!   `bits/n`).

use crate::cluster::{NodeId, SimCluster};
use mlscale_core::units::Seconds;
use serde::{Deserialize, Serialize};

/// Broadcast patterns: master (node 0) to all workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BroadcastKind {
    /// Master sends to each worker in turn.
    Flat,
    /// Binomial tree: informed nodes re-send; `⌈log₂(n+1)⌉` rounds.
    Tree,
    /// Spark's TorrentBroadcast: block-swarming, modelled as a binomial
    /// tree over the full payload (the paper's `log₂ n` rounds).
    Torrent,
}

/// Aggregation patterns: all workers to the master (node 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReduceKind {
    /// Every worker sends directly to the master.
    Flat,
    /// Binomial-tree pairwise reduction.
    Tree,
    /// Spark `treeAggregate` with depth 2: `⌈√n⌉` wave leaders aggregate
    /// their groups, then forward to the driver — the paper's
    /// `2·⌈√n⌉`-transfer model.
    TwoWave,
}

/// Broadcasts `bits` from the master to workers `1..=n`; returns the time
/// the last worker receives it.
pub fn broadcast(
    cluster: &mut SimCluster,
    kind: BroadcastKind,
    bits: f64,
    start: Seconds,
) -> Seconds {
    let n = cluster.workers();
    if n == 0 {
        return start;
    }
    match kind {
        BroadcastKind::Flat => {
            let mut last = start;
            for w in 1..=n {
                last = last.max(cluster.transfer(0, w, bits, start));
            }
            last
        }
        BroadcastKind::Tree | BroadcastKind::Torrent => {
            // Binomial tree: the informed set doubles each round.
            let mut informed: Vec<(NodeId, Seconds)> = vec![(0, start)];
            let mut next_uninformed = 1usize;
            let mut last = start;
            while next_uninformed <= n {
                let mut newly: Vec<(NodeId, Seconds)> = Vec::new();
                for &(src, ready) in &informed {
                    if next_uninformed > n {
                        break;
                    }
                    let dst = next_uninformed;
                    next_uninformed += 1;
                    let done = cluster.transfer(src, dst, bits, ready);
                    newly.push((dst, done));
                    last = last.max(done);
                }
                informed.extend(newly);
            }
            last
        }
    }
}

/// Reduces `bits`-sized contributions from workers `1..=n` (each ready at
/// `ready[w-1]`) onto the master; returns the time the master holds the
/// full aggregate.
pub fn reduce(cluster: &mut SimCluster, kind: ReduceKind, bits: f64, ready: &[Seconds]) -> Seconds {
    let n = cluster.workers();
    assert_eq!(ready.len(), n, "need a readiness time per worker");
    if n == 0 {
        return Seconds::zero();
    }
    match kind {
        ReduceKind::Flat => {
            let mut last = Seconds::zero();
            for w in 1..=n {
                last = last.max(cluster.transfer(w, 0, bits, ready[w - 1]));
            }
            last
        }
        ReduceKind::Tree => {
            // Pairwise binomial reduction among workers, then one transfer
            // to the master.
            let mut holders: Vec<(NodeId, Seconds)> = (1..=n).map(|w| (w, ready[w - 1])).collect();
            while holders.len() > 1 {
                let mut next: Vec<(NodeId, Seconds)> =
                    Vec::with_capacity(holders.len().div_ceil(2));
                let mut iter = holders.chunks(2);
                for pair in &mut iter {
                    match pair {
                        [a] => next.push(*a),
                        [dst, src] => {
                            let at = cluster.transfer(src.0, dst.0, bits, src.1.max(dst.1));
                            next.push((dst.0, at));
                        }
                        _ => unreachable!(),
                    }
                }
                holders = next;
            }
            let (w, at) = holders[0];
            cluster.transfer(w, 0, bits, at)
        }
        ReduceKind::TwoWave => {
            // Wave 1: ⌈√n⌉ leaders; each group member sends to its leader.
            let leaders_count = (n as f64).sqrt().ceil() as usize;
            let leaders: Vec<NodeId> = (1..=leaders_count.min(n)).collect();
            let mut leader_done: Vec<Seconds> = leaders.iter().map(|&l| ready[l - 1]).collect();
            for w in 1..=n {
                if leaders.contains(&w) {
                    continue;
                }
                let li = (w - 1) % leaders.len();
                let done = cluster.transfer(w, leaders[li], bits, ready[w - 1]);
                leader_done[li] = leader_done[li].max(done);
            }
            // Wave 2: leaders forward their partial aggregates to the
            // driver (serialising on its receive NIC).
            let mut last = Seconds::zero();
            for (li, &l) in leaders.iter().enumerate() {
                last = last.max(cluster.transfer(l, 0, bits, leader_done[li]));
            }
            last
        }
    }
}

/// Ring all-reduce among workers `1..=n`: `2·(n−1)` steps exchanging
/// `bits/n` chunks around the ring (reduce-scatter then all-gather);
/// returns the time every worker holds the result.
pub fn ring_all_reduce(cluster: &mut SimCluster, bits: f64, ready: &[Seconds]) -> Seconds {
    let n = cluster.workers();
    assert_eq!(ready.len(), n, "need a readiness time per worker");
    if n <= 1 {
        return ready.first().copied().unwrap_or(Seconds::zero());
    }
    let chunk = bits / n as f64;
    let mut times: Vec<Seconds> = ready.to_vec();
    for _step in 0..(2 * (n - 1)) {
        let mut next = times.clone();
        for (w, &ready_at) in times.iter().enumerate() {
            let dst = (w + 1) % n;
            let done = cluster.transfer(w + 1, dst + 1, chunk, ready_at);
            next[dst] = next[dst].max(done);
        }
        times = next;
    }
    times.iter().copied().fold(Seconds::zero(), Seconds::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscale_core::hardware::{ClusterSpec, LinkSpec, NodeSpec};
    use mlscale_core::units::{BitsPerSec, FlopsRate};

    fn cluster(workers: usize) -> SimCluster {
        let spec = ClusterSpec::new(
            NodeSpec::new(FlopsRate::giga(1.0), 1.0),
            LinkSpec::bandwidth_only(BitsPerSec::giga(1.0)),
        );
        SimCluster::new(spec, workers)
    }

    const GBIT: f64 = 1e9; // one second per transfer at 1 Gbit/s

    #[test]
    fn flat_broadcast_is_linear() {
        let mut c = cluster(8);
        let t = broadcast(&mut c, BroadcastKind::Flat, GBIT, Seconds::zero());
        assert!((t.as_secs() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn tree_broadcast_is_logarithmic() {
        // 8 workers + master: informed set 1→2→4→8→9: 4 rounds.
        let mut c = cluster(8);
        let t = broadcast(&mut c, BroadcastKind::Tree, GBIT, Seconds::zero());
        assert!((t.as_secs() - 4.0).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn tree_broadcast_single_worker_one_round() {
        let mut c = cluster(1);
        let t = broadcast(&mut c, BroadcastKind::Tree, GBIT, Seconds::zero());
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flat_reduce_serialises_on_master() {
        let mut c = cluster(6);
        let ready = vec![Seconds::zero(); 6];
        let t = reduce(&mut c, ReduceKind::Flat, GBIT, &ready);
        assert!((t.as_secs() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn tree_reduce_is_logarithmic() {
        // 8 workers: 3 pairwise rounds + 1 transfer to master = 4.
        let mut c = cluster(8);
        let ready = vec![Seconds::zero(); 8];
        let t = reduce(&mut c, ReduceKind::Tree, GBIT, &ready);
        assert!((t.as_secs() - 4.0).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn two_wave_scales_as_sqrt() {
        // n=16, 4 leaders, 12 members spread 3 per leader: wave 1 takes 3
        // serialised receives, wave 2 takes 4 serialised sends to master.
        let mut c = cluster(16);
        let ready = vec![Seconds::zero(); 16];
        let t = reduce(&mut c, ReduceKind::TwoWave, GBIT, &ready);
        assert!((t.as_secs() - 7.0).abs() < 1e-9, "got {t}");
        // Compare shapes at larger n: two-wave ≪ flat, > tree.
        let mut c2 = cluster(64);
        let ready2 = vec![Seconds::zero(); 64];
        let t2 = reduce(&mut c2, ReduceKind::TwoWave, GBIT, &ready2);
        assert!(t2.as_secs() < 64.0 / 2.0);
        assert!(t2.as_secs() > (64f64).log2());
    }

    #[test]
    fn ring_all_reduce_near_constant() {
        // Total time ≈ 2·(n−1)/n · bits/B regardless of n.
        for n in [2usize, 4, 16, 32] {
            let mut c = cluster(n);
            let ready = vec![Seconds::zero(); n];
            let t = ring_all_reduce(&mut c, GBIT, &ready);
            let expected = 2.0 * (n as f64 - 1.0) / n as f64;
            assert!(
                (t.as_secs() - expected).abs() < 1e-6,
                "n={n}: got {t}, expected {expected}"
            );
        }
    }

    #[test]
    fn ring_single_worker_is_free() {
        let mut c = cluster(1);
        let t = ring_all_reduce(&mut c, GBIT, &[Seconds::new(0.5)]);
        assert_eq!(t.as_secs(), 0.5);
    }

    #[test]
    fn reduce_respects_readiness() {
        let mut c = cluster(2);
        let ready = vec![Seconds::new(10.0), Seconds::zero()];
        let t = reduce(&mut c, ReduceKind::Flat, GBIT, &ready);
        assert!(t.as_secs() >= 11.0);
    }

    #[test]
    fn torrent_matches_tree_shape() {
        let mut c1 = cluster(16);
        let mut c2 = cluster(16);
        let t1 = broadcast(&mut c1, BroadcastKind::Torrent, GBIT, Seconds::zero());
        let t2 = broadcast(&mut c2, BroadcastKind::Tree, GBIT, Seconds::zero());
        assert_eq!(t1, t2);
    }

    #[test]
    fn shared_memory_collectives_are_instant() {
        use mlscale_core::hardware::presets;
        let mut c = SimCluster::new(presets::dl980(), 8);
        let t = broadcast(&mut c, BroadcastKind::Flat, 1e12, Seconds::zero());
        assert!(t.is_zero());
        let ready = vec![Seconds::new(1.0); 8];
        let t = reduce(&mut c, ReduceKind::TwoWave, 1e12, &ready);
        assert!((t.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "readiness time per worker")]
    fn mismatched_ready_rejected() {
        let mut c = cluster(3);
        let _ = reduce(&mut c, ReduceKind::Flat, GBIT, &[Seconds::zero()]);
    }
}
