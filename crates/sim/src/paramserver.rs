//! Asynchronous parameter-server simulation — the paper's first
//! future-work item ("we consider building a model for asynchronous
//! algorithms, such as asynchronous gradient descent").
//!
//! Workers loop independently: pull parameters from the server, compute a
//! gradient, push it back; the server applies updates in arrival order.
//! There is no barrier, so stragglers do not gate anyone — but pushed
//! gradients are *stale* (computed against parameters that other workers
//! have since updated). The simulation reports both throughput (updates/s)
//! and the staleness distribution, exposing the parallelism-vs-convergence
//! trade-off the paper highlights.

use crate::cluster::SimCluster;
use crate::overhead::OverheadModel;
use mlscale_core::hardware::ClusterSpec;
use mlscale_core::units::Seconds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of an asynchronous SGD run.
#[derive(Debug, Clone, Copy)]
pub struct ParamServerConfig {
    /// Cluster hardware (node 0 is the server).
    pub cluster: ClusterSpec,
    /// Gradient computation volume per update (flops).
    pub grad_flops: f64,
    /// Parameter/gradient payload per pull or push (bits).
    pub payload_bits: f64,
    /// Server-side cost of applying one update (flops).
    pub apply_flops: f64,
    /// Per-task overhead on workers.
    pub overhead: OverheadModel,
    /// Determinism seed.
    pub seed: u64,
}

/// Outcome of an asynchronous run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamServerReport {
    /// Total simulated time to apply all updates.
    pub total: Seconds,
    /// Number of updates applied.
    pub updates: usize,
    /// Updates applied per simulated second.
    pub throughput: f64,
    /// Mean staleness: updates applied by others between a worker's pull
    /// and the application of its push.
    pub mean_staleness: f64,
    /// Maximum observed staleness.
    pub max_staleness: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Pending {
    time: Seconds,
    worker: usize,
    pulled_version: usize,
}

impl Eq for Pending {}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .as_secs()
            .total_cmp(&other.time.as_secs())
            .then(self.worker.cmp(&other.worker))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Simulates asynchronous SGD with `workers` workers until `total_updates`
/// gradients have been applied.
///
/// # Panics
/// Panics when `workers == 0` or `total_updates == 0`.
pub fn simulate_async(
    config: &ParamServerConfig,
    workers: usize,
    total_updates: usize,
) -> ParamServerReport {
    assert!(workers >= 1, "need at least one worker");
    assert!(total_updates >= 1, "need at least one update");
    let mut cluster = SimCluster::new(config.cluster, workers);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut heap: BinaryHeap<Reverse<Pending>> = BinaryHeap::new();
    let mut version = 0usize; // number of updates applied so far
    let mut staleness_sum = 0u64;
    let mut max_staleness = 0usize;
    let mut last_apply = Seconds::zero();

    // Prime every worker with its first pull + compute cycle.
    for w in 1..=workers {
        let pulled = cluster.transfer(0, w, config.payload_bits, Seconds::zero());
        let overhead = config.overhead.sample(workers, &mut rng);
        let after = cluster.occupy(w, overhead, pulled);
        let computed = cluster.compute(w, config.grad_flops, after);
        heap.push(Reverse(Pending {
            time: computed,
            worker: w,
            pulled_version: 0,
        }));
    }

    while version < total_updates {
        // lint: allow(panic-free-lib): every worker re-enqueues its next completion before this pop, so the heap is never empty mid-run
        let Reverse(done) = heap.pop().expect("workers always have pending work");
        // Push the gradient to the server and apply it.
        let arrived = cluster.transfer(done.worker, 0, config.payload_bits, done.time);
        let applied = cluster.compute(0, config.apply_flops, arrived);
        version += 1;
        let staleness = version - 1 - done.pulled_version;
        staleness_sum += staleness as u64;
        max_staleness = max_staleness.max(staleness);
        last_apply = applied;

        // Worker starts its next cycle immediately: pull, compute, repeat.
        if version < total_updates {
            let pulled = cluster.transfer(0, done.worker, config.payload_bits, applied);
            let overhead = config.overhead.sample(workers, &mut rng);
            let after = cluster.occupy(done.worker, overhead, pulled);
            let computed = cluster.compute(done.worker, config.grad_flops, after);
            heap.push(Reverse(Pending {
                time: computed,
                worker: done.worker,
                pulled_version: version,
            }));
        }
    }

    ParamServerReport {
        total: last_apply,
        updates: total_updates,
        throughput: total_updates as f64 / last_apply.as_secs().max(f64::MIN_POSITIVE),
        mean_staleness: staleness_sum as f64 / total_updates as f64,
        max_staleness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscale_core::hardware::{ClusterSpec, LinkSpec, NodeSpec};
    use mlscale_core::units::{BitsPerSec, FlopsRate};

    fn config() -> ParamServerConfig {
        ParamServerConfig {
            cluster: ClusterSpec::new(
                NodeSpec::new(FlopsRate::giga(1.0), 1.0),
                LinkSpec::bandwidth_only(BitsPerSec::giga(10.0)),
            ),
            grad_flops: 1e9,   // 1 s per gradient
            payload_bits: 1e8, // 0.01 s per transfer
            apply_flops: 1e6,  // negligible apply
            overhead: OverheadModel::None,
            seed: 7,
        }
    }

    #[test]
    fn single_worker_throughput_matches_cycle_time() {
        let report = simulate_async(&config(), 1, 20);
        // Cycle ≈ pull 0.01 + compute 1.0 + push 0.01 + apply 0.001.
        let cycle = 0.01 + 1.0 + 0.01 + 0.001;
        assert!((report.throughput - 1.0 / cycle).abs() / (1.0 / cycle) < 0.05);
        assert_eq!(report.mean_staleness, 0.0, "one worker is never stale");
        assert_eq!(report.updates, 20);
    }

    #[test]
    fn throughput_scales_with_workers_before_saturation() {
        let t1 = simulate_async(&config(), 1, 50).throughput;
        let t4 = simulate_async(&config(), 4, 50).throughput;
        let t8 = simulate_async(&config(), 8, 80).throughput;
        assert!(
            t4 > 3.0 * t1,
            "4 workers should nearly quadruple throughput"
        );
        assert!(t8 > t4);
    }

    #[test]
    fn staleness_grows_with_workers() {
        let s2 = simulate_async(&config(), 2, 100).mean_staleness;
        let s8 = simulate_async(&config(), 8, 100).mean_staleness;
        // With n workers computing concurrently, ~n−1 updates land between
        // a pull and the matching push.
        assert!(s8 > s2);
        assert!(
            (s8 - 7.0).abs() < 2.0,
            "expected staleness near 7, got {s8}"
        );
    }

    #[test]
    fn server_nic_saturation_caps_throughput() {
        // Tiny compute, heavy payload: the server NIC becomes the
        // bottleneck and more workers stop helping.
        let cfg = ParamServerConfig {
            grad_flops: 1e6,
            payload_bits: 1e9, // 0.1 s per transfer at 10 Gbit/s
            ..config()
        };
        let t4 = simulate_async(&cfg, 4, 60).throughput;
        let t16 = simulate_async(&cfg, 16, 60).throughput;
        assert!(
            t16 < 1.5 * t4,
            "saturated server must not scale: {t4} → {t16}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ParamServerConfig {
            overhead: OverheadModel::Exponential { mean: 0.05 },
            ..config()
        };
        let a = simulate_async(&cfg, 4, 40);
        let b = simulate_async(&cfg, 4, 40);
        assert_eq!(a, b);
    }

    #[test]
    fn async_beats_sync_with_stragglers() {
        // Heavy-tailed stragglers: synchronous BSP pays the max each
        // round, async pays the mean. Compare total time for the same
        // number of gradient computations.
        use crate::bsp::{simulate, BspConfig, BspProgram, CommPhase, SuperstepSpec};
        let overhead = OverheadModel::LogNormal {
            mu: -1.5,
            sigma: 1.2,
        };
        let n = 8;
        let updates = 64; // 8 rounds of 8 in the sync schedule
        let async_report = simulate_async(
            &ParamServerConfig {
                overhead,
                ..config()
            },
            n,
            updates,
        );
        let sync_report = simulate(
            &BspProgram {
                supersteps: vec![SuperstepSpec::even(
                    1e9 * n as f64,
                    n,
                    CommPhase::GradientExchange {
                        bits: 1e8,
                        broadcast: crate::collectives::BroadcastKind::Torrent,
                        reduce: crate::collectives::ReduceKind::TwoWave,
                    },
                )],
                iterations: updates / n,
            },
            &BspConfig {
                cluster: config().cluster,
                overhead,
                seed: 7,
            },
            n,
        );
        assert!(
            async_report.total < sync_report.total,
            "async {} vs sync {}",
            async_report.total,
            sync_report.total
        );
    }

    #[test]
    #[should_panic(expected = "at least one update")]
    fn zero_updates_rejected() {
        let _ = simulate_async(&config(), 1, 0);
    }
}
