//! BSP program execution on the simulated cluster.
//!
//! A [`BspProgram`] is the bridge between real workloads and the
//! simulator: each superstep carries the *actual* per-worker computation
//! volumes (e.g. gradient flops for each batch shard, or `E_i·c(S)` for
//! each graph partition) and a communication phase. The simulator executes
//! the schedule — per-task overhead, compute, barrier, collective — and
//! reports per-iteration wall times, which play the role of the paper's
//! experimental measurements.

use crate::cluster::SimCluster;
use crate::collectives::{
    broadcast, halving_doubling_all_reduce, hierarchical_all_reduce, reduce, ring_all_reduce,
    BroadcastKind, ReduceKind,
};
use crate::overhead::OverheadModel;
use mlscale_core::hardware::ClusterSpec;
use mlscale_core::straggler::StragglerModel;
use mlscale_core::units::Seconds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The communication phase closing a superstep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CommPhase {
    /// No communication (embarrassingly parallel superstep).
    None,
    /// Synchronous gradient exchange: per-worker contributions of `bits`
    /// are aggregated at the master, then the result is broadcast back —
    /// the data-parallel gradient descent pattern.
    GradientExchange {
        /// Payload per worker (the model's `bits·W`).
        bits: f64,
        /// Broadcast pattern for the updated parameters.
        broadcast: BroadcastKind,
        /// Aggregation pattern for the gradients.
        reduce: ReduceKind,
    },
    /// Linear shared-medium exchange: a total volume crosses one shared
    /// link back-to-back (the paper's `32/B·r·V·S` replica traffic of the
    /// graph-inference model). Free under shared memory.
    SharedMedium {
        /// Total bits crossing the medium this superstep.
        total_bits: f64,
    },
    /// Ring all-reduce of per-worker `bits` contributions.
    RingAllReduce {
        /// Payload per worker.
        bits: f64,
    },
    /// Recursive halving/doubling all-reduce of per-worker `bits`
    /// contributions (Rabenseifner's algorithm).
    HalvingDoubling {
        /// Payload per worker.
        bits: f64,
    },
    /// Two-tier hierarchical all-reduce over the cluster's rack topology:
    /// intra-rack tree reduce/broadcast plus an inter-rack leader ring.
    Hierarchical {
        /// Payload per worker.
        bits: f64,
    },
}

/// One superstep: per-worker compute loads plus a communication phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuperstepSpec {
    /// `loads[w]` = flops executed by worker `w+1` this superstep.
    pub loads: Vec<f64>,
    /// Communication closing the superstep.
    pub comm: CommPhase,
}

impl SuperstepSpec {
    /// Evenly divided load across `n` workers.
    pub fn even(total_flops: f64, n: usize, comm: CommPhase) -> Self {
        assert!(n >= 1);
        Self {
            loads: vec![total_flops / n as f64; n],
            comm,
        }
    }
}

/// A BSP program: supersteps repeated for `iterations`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BspProgram {
    /// Supersteps per iteration.
    pub supersteps: Vec<SuperstepSpec>,
    /// Iteration count.
    pub iterations: usize,
}

/// Simulation configuration: hardware, overheads, determinism seed.
#[derive(Debug, Clone, Copy)]
pub struct BspConfig {
    /// The cluster hardware.
    pub cluster: ClusterSpec,
    /// Per-task overhead model.
    pub overhead: OverheadModel,
    /// RNG seed (the simulator is fully deterministic given the seed).
    pub seed: u64,
}

/// Straggler injection for the simulator: a per-worker per-superstep delay
/// draw added to each compute phase, plus the drop-slowest-k (backup
/// worker / speculative execution) mitigation. This is the discrete-event
/// twin of the analytic order-statistic model in
/// [`mlscale_core::straggler`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerSim {
    /// Delay distribution sampled once per worker per superstep.
    pub model: StragglerModel,
    /// The barrier waits only for the fastest `n − k` workers; the slowest
    /// `k` are killed at the barrier (their shards covered by backups).
    /// Clamped to `n − 1` at execution time.
    pub backup_k: usize,
}

impl StragglerSim {
    /// No stragglers: the simulator behaves exactly as without this layer
    /// (no RNG draws are consumed).
    pub fn none() -> Self {
        Self {
            model: StragglerModel::Deterministic,
            backup_k: 0,
        }
    }
}

impl Default for StragglerSim {
    fn default() -> Self {
        Self::none()
    }
}

/// Result of simulating a BSP program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BspReport {
    /// Wall time of each iteration.
    pub iteration_times: Vec<Seconds>,
    /// Total wall time.
    pub total: Seconds,
}

impl BspReport {
    /// Mean iteration time — the quantity the paper's per-iteration
    /// speedups are computed from.
    pub fn mean_iteration(&self) -> Seconds {
        assert!(!self.iteration_times.is_empty());
        let sum: Seconds = self.iteration_times.iter().copied().sum();
        sum / self.iteration_times.len() as f64
    }
}

/// Executes `program` on a cluster of `workers` nodes and returns the
/// simulated timing report.
///
/// # Panics
/// Panics when a superstep's load vector length disagrees with `workers`.
pub fn simulate(program: &BspProgram, config: &BspConfig, workers: usize) -> BspReport {
    simulate_with_speeds(program, config, workers, &vec![1.0; workers])
}

/// Like [`simulate`], but with heterogeneous per-worker compute speeds:
/// `speed_factors[w]` multiplies worker `w+1`'s rate (1.0 = nominal). The
/// BSP barrier is gated by the slowest worker, so one 0.5× node halves the
/// whole cluster's effective throughput on an evenly-divided superstep.
///
/// # Panics
/// Panics when the factor list does not cover every worker.
pub fn simulate_with_speeds(
    program: &BspProgram,
    config: &BspConfig,
    workers: usize,
    speed_factors: &[f64],
) -> BspReport {
    simulate_with_stragglers(
        program,
        config,
        workers,
        speed_factors,
        &StragglerSim::none(),
    )
}

/// The full simulator entry point: heterogeneous per-worker compute speeds
/// *and* stochastic straggler injection with the drop-slowest-k backup
/// mitigation. Each superstep samples one delay per worker from
/// `straggler.model` (on top of the [`OverheadModel`]); the barrier waits
/// for the fastest `n − k` workers, the slowest `k` tasks are killed at
/// the barrier and their contributions treated as covered by backups.
///
/// With [`StragglerSim::none`] this is bit-identical to
/// [`simulate_with_speeds`] under the same seed: the deterministic model
/// consumes no randomness.
///
/// # Panics
/// Panics when the factor list does not cover every worker.
pub fn simulate_with_stragglers(
    program: &BspProgram,
    config: &BspConfig,
    workers: usize,
    speed_factors: &[f64],
    straggler: &StragglerSim,
) -> BspReport {
    assert!(workers >= 1, "need at least one worker");
    assert!(program.iterations >= 1, "need at least one iteration");
    assert_eq!(
        speed_factors.len(),
        workers,
        "need a speed factor per worker"
    );
    let drop_k = straggler.backup_k.min(workers - 1);
    let mut cluster = SimCluster::new(config.cluster, workers);
    for (w, &f) in speed_factors.iter().enumerate() {
        cluster.set_speed_factor(w + 1, f);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut iteration_times = Vec::with_capacity(program.iterations);
    let mut cursor = Seconds::zero();
    // Per-superstep scratch, allocated once for the whole run.
    let mut done: Vec<Seconds> = Vec::with_capacity(workers);
    let mut order: Vec<Seconds> = Vec::with_capacity(workers);

    for _ in 0..program.iterations {
        let iter_start = cursor;
        for step in &program.supersteps {
            assert_eq!(
                step.loads.len(),
                workers,
                "superstep loads must cover every worker"
            );
            // Compute phase: overhead + straggler delay + load per worker,
            // from the barrier.
            done.clear();
            for (w, &load) in step.loads.iter().enumerate() {
                let node = w + 1;
                let overhead = config.overhead.sample(workers, &mut rng)
                    + Seconds::new(straggler.model.sample(&mut rng));
                let after_overhead = cluster.occupy(node, overhead, cursor);
                done.push(cluster.compute(node, load, after_overhead));
            }
            // Barrier: the (n−k)-th order statistic of the finish times.
            // The k dropped tasks are killed (speculative execution) and
            // their contributions clamped to the barrier — a backup copy
            // finished by then. A quickselect finds the order statistic in
            // O(n) without sorting (total_cmp is a total order, so the
            // selected value equals the fully-sorted one).
            let barrier = if drop_k == 0 {
                done.iter().copied().fold(cursor, Seconds::max)
            } else {
                order.clear();
                order.extend_from_slice(&done);
                let idx = workers - 1 - drop_k;
                let (_, kth, _) =
                    order.select_nth_unstable_by(idx, |a, b| a.as_secs().total_cmp(&b.as_secs()));
                let kept = (*kth).max(cursor);
                for (w, d) in done.iter_mut().enumerate() {
                    if *d > kept {
                        *d = kept;
                        cluster.truncate_compute(w + 1, kept);
                    }
                }
                kept
            };
            // Communication phase.
            cursor = match &step.comm {
                CommPhase::None => barrier,
                CommPhase::GradientExchange {
                    bits,
                    broadcast: bk,
                    reduce: rk,
                } => {
                    if workers == 1 {
                        // A single worker exchanges nothing (the paper's
                        // t(1) has no communication term).
                        barrier
                    } else {
                        let aggregated = reduce(&mut cluster, *rk, *bits, &done);
                        broadcast(&mut cluster, *bk, *bits, aggregated)
                    }
                }
                CommPhase::SharedMedium { total_bits } => {
                    if workers == 1 || cluster.is_shared_memory() {
                        barrier
                    } else {
                        barrier + Seconds::new(total_bits / config.cluster.bandwidth().get())
                    }
                }
                CommPhase::RingAllReduce { bits } => ring_all_reduce(&mut cluster, *bits, &done),
                CommPhase::HalvingDoubling { bits } => {
                    halving_doubling_all_reduce(&mut cluster, *bits, &done)
                }
                CommPhase::Hierarchical { bits } => {
                    hierarchical_all_reduce(&mut cluster, *bits, &done)
                }
            };
        }
        iteration_times.push(cursor - iter_start);
    }
    BspReport {
        iteration_times,
        total: cursor,
    }
}

/// Convenience: simulated mean-iteration time as a function of `n`,
/// suitable for building a [`mlscale_core::SpeedupCurve`]. The
/// `program_for` closure receives the worker count so per-worker loads can
/// be derived from a real partition/shard of the workload.
///
/// The per-`n` simulations are independent — each [`simulate`] call seeds
/// its own RNG from `config.seed` — so the sweep fans out across threads
/// ([`mlscale_core::par`]) with results bit-identical to a serial loop.
pub fn time_curve(
    config: &BspConfig,
    ns: impl IntoIterator<Item = usize>,
    program_for: impl Fn(usize) -> BspProgram + Sync,
) -> Vec<(usize, Seconds)> {
    let ns: Vec<usize> = ns.into_iter().collect();
    mlscale_core::par::map(&ns, |&n| {
        let program = program_for(n);
        let report = simulate(&program, config, n);
        (n, report.mean_iteration())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscale_core::hardware::{presets, LinkSpec, NodeSpec};
    use mlscale_core::units::{BitsPerSec, FlopsRate};

    fn config() -> BspConfig {
        BspConfig {
            cluster: ClusterSpec::new(
                NodeSpec::new(FlopsRate::giga(1.0), 1.0),
                LinkSpec::bandwidth_only(BitsPerSec::giga(1.0)),
            ),
            overhead: OverheadModel::None,
            seed: 42,
        }
    }

    #[test]
    fn pure_compute_matches_analytic_time() {
        let n = 4;
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(8e9, n, CommPhase::None)],
            iterations: 3,
        };
        let report = simulate(&program, &config(), n);
        // 8 Gflop / 4 workers / 1 Gflop/s = 2 s per iteration.
        for t in &report.iteration_times {
            assert!((t.as_secs() - 2.0).abs() < 1e-9);
        }
        assert!((report.total.as_secs() - 6.0).abs() < 1e-9);
        assert!((report.mean_iteration().as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn no_communication_at_single_worker() {
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(
                1e9,
                1,
                CommPhase::GradientExchange {
                    bits: 1e9,
                    broadcast: BroadcastKind::Torrent,
                    reduce: ReduceKind::TwoWave,
                },
            )],
            iterations: 1,
        };
        let report = simulate(&program, &config(), 1);
        assert!((report.total.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gradient_exchange_adds_comm_time() {
        let n = 8;
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(
                8e9,
                n,
                CommPhase::GradientExchange {
                    bits: 1e9,
                    broadcast: BroadcastKind::Tree,
                    reduce: ReduceKind::Tree,
                },
            )],
            iterations: 1,
        };
        let report = simulate(&program, &config(), n);
        // Compute 1 s + tree reduce 4 s + tree broadcast 4 s.
        assert!(
            (report.total.as_secs() - 9.0).abs() < 1e-9,
            "got {}",
            report.total
        );
    }

    #[test]
    fn straggler_load_gates_barrier() {
        let program = BspProgram {
            supersteps: vec![SuperstepSpec {
                loads: vec![1e9, 5e9, 1e9],
                comm: CommPhase::None,
            }],
            iterations: 1,
        };
        let report = simulate(&program, &config(), 3);
        assert!((report.total.as_secs() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn shared_medium_time_is_volume_over_bandwidth() {
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(
                2e9,
                2,
                CommPhase::SharedMedium { total_bits: 5e8 },
            )],
            iterations: 1,
        };
        let report = simulate(&program, &config(), 2);
        assert!((report.total.as_secs() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn shared_memory_cluster_skips_comm() {
        let cfg = BspConfig {
            cluster: presets::dl980(),
            overhead: OverheadModel::None,
            seed: 1,
        };
        let flops = cfg.cluster.flops().get();
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(
                flops, // 1 second of compute at n=1
                4,
                CommPhase::SharedMedium { total_bits: 1e15 },
            )],
            iterations: 1,
        };
        let report = simulate(&program, &cfg, 4);
        assert!((report.total.as_secs() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn constant_overhead_shifts_every_iteration() {
        let mut cfg = config();
        cfg.overhead = OverheadModel::Constant { seconds: 0.5 };
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(1e9, 1, CommPhase::None)],
            iterations: 2,
        };
        let report = simulate(&program, &cfg, 1);
        for t in &report.iteration_times {
            assert!((t.as_secs() - 1.5).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut cfg = config();
        cfg.overhead = OverheadModel::Exponential { mean: 0.1 };
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(1e9, 4, CommPhase::None)],
            iterations: 5,
        };
        let a = simulate(&program, &cfg, 4);
        let b = simulate(&program, &cfg, 4);
        assert_eq!(a, b);
        cfg.seed = 43;
        let c = simulate(&program, &cfg, 4);
        assert_ne!(a, c, "different seeds should jitter differently");
    }

    #[test]
    fn ring_all_reduce_phase_runs() {
        let n = 4;
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(
                4e9,
                n,
                CommPhase::RingAllReduce { bits: 1e9 },
            )],
            iterations: 1,
        };
        let report = simulate(&program, &config(), n);
        // 1 s compute + 2·3/4 s ring.
        assert!(
            (report.total.as_secs() - 2.5).abs() < 1e-6,
            "got {}",
            report.total
        );
    }

    #[test]
    fn halving_doubling_phase_runs() {
        let n = 4;
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(
                4e9,
                n,
                CommPhase::HalvingDoubling { bits: 1e9 },
            )],
            iterations: 1,
        };
        let report = simulate(&program, &config(), n);
        // 1 s compute + 2·3/4 s exchange (same volume as ring at p = 4).
        assert!(
            (report.total.as_secs() - 2.5).abs() < 1e-6,
            "got {}",
            report.total
        );
    }

    #[test]
    fn hierarchical_phase_uses_rack_topology() {
        use mlscale_core::hardware::RackSpec;
        let mut cfg = config();
        cfg.cluster = ClusterSpec::new(
            NodeSpec::new(FlopsRate::giga(1.0), 1.0),
            LinkSpec::bandwidth_only(BitsPerSec::giga(10.0)),
        )
        .with_racks(RackSpec::new(
            4,
            LinkSpec::bandwidth_only(BitsPerSec::giga(1.0)),
        ));
        let n = 16;
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(
                16e9,
                n,
                CommPhase::Hierarchical { bits: 1e9 },
            )],
            iterations: 1,
        };
        let report = simulate(&program, &cfg, n);
        // 1 s compute + 2·0.1 intra reduce + 6·0.25 leader ring + 2·0.1
        // intra broadcast.
        assert!(
            (report.total.as_secs() - 2.9).abs() < 1e-6,
            "got {}",
            report.total
        );
    }

    #[test]
    fn time_curve_produces_descending_times_for_parallel_work() {
        let cfg = config();
        let curve = time_curve(&cfg, [1, 2, 4, 8], |n| BspProgram {
            supersteps: vec![SuperstepSpec::even(8e9, n, CommPhase::None)],
            iterations: 2,
        });
        assert_eq!(curve.len(), 4);
        for pair in curve.windows(2) {
            assert!(pair[1].1 < pair[0].1);
        }
    }

    #[test]
    fn one_slow_node_gates_the_whole_barrier() {
        let n = 4;
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(4e9, n, CommPhase::None)],
            iterations: 1,
        };
        let uniform = simulate(&program, &config(), n);
        let hetero = simulate_with_speeds(&program, &config(), n, &[1.0, 1.0, 0.5, 1.0]);
        // Even load: 1 s each; the 0.5x node needs 2 s and gates the barrier.
        assert!((uniform.total.as_secs() - 1.0).abs() < 1e-9);
        assert!((hetero.total.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "speed factor per worker")]
    fn mismatched_speed_factors_rejected() {
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(1e9, 2, CommPhase::None)],
            iterations: 1,
        };
        let _ = simulate_with_speeds(&program, &config(), 2, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "cover every worker")]
    fn mismatched_loads_rejected() {
        let program = BspProgram {
            supersteps: vec![SuperstepSpec {
                loads: vec![1.0],
                comm: CommPhase::None,
            }],
            iterations: 1,
        };
        let _ = simulate(&program, &config(), 2);
    }

    #[test]
    fn no_stragglers_is_bit_identical_to_plain_simulation() {
        let mut cfg = config();
        cfg.overhead = OverheadModel::Exponential { mean: 0.1 };
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(4e9, 4, CommPhase::None)],
            iterations: 5,
        };
        let plain = simulate(&program, &cfg, 4);
        let layered = simulate_with_stragglers(&program, &cfg, 4, &[1.0; 4], &StragglerSim::none());
        assert_eq!(plain, layered, "disabled stragglers must not perturb RNG");
    }

    #[test]
    fn straggler_draws_slow_the_barrier() {
        let n = 8;
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(8e9, n, CommPhase::None)],
            iterations: 20,
        };
        let ideal = simulate(&program, &config(), n);
        let straggled = simulate_with_stragglers(
            &program,
            &config(),
            n,
            &vec![1.0; n],
            &StragglerSim {
                model: StragglerModel::ExponentialTail { mean: 0.3 },
                backup_k: 0,
            },
        );
        // E[max of 8 Exp(0.3)] = 0.3·H_8 ≈ 0.82 s per superstep.
        assert!(straggled.total > ideal.total + Seconds::new(10.0));
    }

    #[test]
    fn dropping_slowest_k_shortens_iterations() {
        let n = 8;
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(8e9, n, CommPhase::None)],
            iterations: 50,
        };
        let model = StragglerModel::LogNormalTail {
            mu: -1.0,
            sigma: 1.5,
        };
        let plain = simulate_with_stragglers(
            &program,
            &config(),
            n,
            &vec![1.0; n],
            &StragglerSim { model, backup_k: 0 },
        );
        let mitigated = simulate_with_stragglers(
            &program,
            &config(),
            n,
            &vec![1.0; n],
            &StragglerSim { model, backup_k: 2 },
        );
        assert!(
            mitigated.total < plain.total,
            "drop-slowest-2 must shorten the run: {} vs {}",
            mitigated.total,
            plain.total
        );
    }

    #[test]
    fn backup_k_clamps_to_leave_one_worker() {
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(2e9, 2, CommPhase::None)],
            iterations: 1,
        };
        let report = simulate_with_stragglers(
            &program,
            &config(),
            2,
            &[1.0; 2],
            &StragglerSim {
                model: StragglerModel::Deterministic,
                backup_k: 99,
            },
        );
        // k clamps to 1: barrier = fastest worker, 1 s of compute each.
        assert!((report.total.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn killed_tasks_do_not_leak_into_the_next_superstep() {
        // One worker is 10× slower; with backup_k = 1 its task is killed
        // at each barrier, so iterations stay at the fast workers' pace
        // instead of queueing ever further behind.
        let n = 4;
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(4e9, n, CommPhase::None)],
            iterations: 10,
        };
        let report = simulate_with_stragglers(
            &program,
            &config(),
            n,
            &[1.0, 1.0, 1.0, 0.1],
            &StragglerSim {
                model: StragglerModel::Deterministic,
                backup_k: 1,
            },
        );
        // Every iteration: 1 s for the three nominal workers.
        for t in &report.iteration_times {
            assert!((t.as_secs() - 1.0).abs() < 1e-9, "got {t}");
        }
    }

    #[test]
    fn two_wave_exchange_beats_flat_at_scale() {
        let n = 25;
        let mk = |rk| BspProgram {
            supersteps: vec![SuperstepSpec::even(
                1e9,
                n,
                CommPhase::GradientExchange {
                    bits: 1e8,
                    broadcast: BroadcastKind::Torrent,
                    reduce: rk,
                },
            )],
            iterations: 1,
        };
        let flat = simulate(&mk(ReduceKind::Flat), &config(), n);
        let two_wave = simulate(&mk(ReduceKind::TwoWave), &config(), n);
        assert!(two_wave.total < flat.total);
    }
}
