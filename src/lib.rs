//! # mlscale — Modeling Scalability of Distributed Machine Learning
//!
//! A from-scratch Rust reproduction of *Modeling Scalability of Distributed
//! Machine Learning* (Ulanov, Simanovsky, Marwah — ICDE 2017,
//! arXiv:1610.06276): an analytic framework that predicts, from hardware
//! specifications alone, how a distributed ML algorithm's speedup
//! `s(n) = t(1)/t(n)` behaves as workers are added — plus every substrate
//! needed to validate it end to end (a neural-network cost algebra, a
//! graph/MRF/belief-propagation stack, and a discrete-event BSP cluster
//! simulator standing in for the paper's Spark/GPU/80-core testbeds).
//!
//! This facade crate re-exports the workspace members under stable module
//! names:
//!
//! * [`model`] (`mlscale-core`) — BSP supersteps, communication/computation
//!   time-complexity models, speedup analysis, strong & weak scaling,
//!   MAPE validation metrics, and the gradient-descent / graph-inference
//!   instantiations;
//! * [`nn`] (`mlscale-nn`) — layer cost algebra, the Table I model zoo
//!   (MNIST FC, Inception v3), and a runnable mini-MLP trainer;
//! * [`graph`] (`mlscale-graph`) — CSR graphs, power-law generators
//!   calibrated to the paper's DNS traffic graph, partitioning statistics,
//!   and a real loopy belief-propagation engine;
//! * [`sim`] (`mlscale-sim`) — the discrete-event cluster simulator
//!   (collectives, overhead models, async parameter server);
//! * [`workloads`] (`mlscale-workloads`) — end-to-end drivers and the
//!   `table1`/`fig1`…`fig4`/ablation experiment definitions;
//! * [`scenario`] (`mlscale-scenario`) — declarative JSON scenario specs
//!   and the batch sweep engine behind `mlscale sweep`;
//! * [`serve`] (`mlscale-serve`) — the dependency-free HTTP/1.1 planner
//!   daemon behind `mlscale serve` (`POST /gd`, `/plan`, `/sweep`).
//!
//! ## Quickstart
//!
//! ```
//! use mlscale::model::hardware::presets;
//! use mlscale::model::models::gd::{GdComm, GradientDescentModel};
//! use mlscale::model::units::FlopCount;
//!
//! // How many Spark workers should train the paper's MNIST network?
//! let model = GradientDescentModel {
//!     cost_per_example: FlopCount::new(6.0 * 12e6),
//!     batch_size: 60_000.0,
//!     params: 12e6,
//!     bits_per_param: 64,
//!     cluster: presets::spark_cluster(),
//!     comm: GdComm::Spark,
//! };
//! let (n_opt, s_opt) = model.strong_curve(1..=13).optimal();
//! assert_eq!(n_opt, 9); // the paper's answer
//! assert!(s_opt > 3.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub use mlscale_core as model;
pub use mlscale_graph as graph;
pub use mlscale_nn as nn;
pub use mlscale_scenario as scenario;
pub use mlscale_serve as serve;
pub use mlscale_sim as sim;
pub use mlscale_workloads as workloads;
