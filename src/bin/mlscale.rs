//! `mlscale` — command-line scalability estimation, the paper's suggested
//! integration path ("the possible solution is to integrate the estimation
//! software with such tools as Spark, Hadoop, and Tensorflow").
//!
//! ```text
//! mlscale gd   --params 12e6 --cost-per-example 72e6 --batch 60000 \
//!              --flops 84.48e9 --bandwidth 1e9 --bits 64 --comm spark --max-n 16
//! mlscale gd   --preset fig3 --weak --max-n 200
//! mlscale bp   --vertices 165000 --edges 1013000 --max-degree 9800 --max-n 80
//! mlscale plan --preset fig2 --iterations 1000 --price 2.0 --deadline 7200
//! ```
//!
//! All flags take `--flag value` form; numbers accept scientific notation.

use mlscale::graph::sampling::zipf_weights;
use mlscale::model::hardware::{presets, ClusterSpec, LinkSpec, NodeSpec};
use mlscale::model::models::gd::{GdComm, GradientDescentModel};
use mlscale::model::models::graphinf::{
    bp_cost_per_edge, max_edges_monte_carlo, EdgeLoad, GraphInferenceModel,
};
use mlscale::model::planner::{Planner, Pricing};
use mlscale::model::units::{BitsPerSec, FlopCount, FlopsRate, Seconds};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: mlscale <gd|bp|plan> [--flag value]...\n\
         \n\
         gd   — gradient-descent speedup curve\n\
              --preset fig2|fig3        load a paper configuration\n\
              --params W --cost-per-example C --batch S --bits 32|64\n\
              --flops F --bandwidth B   effective flop/s and bit/s\n\
              --comm tree|spark|linear|ring|none\n\
              --max-n N [--weak]        evaluate 1..=N, weak scaling optional\n\
         bp   — graph-inference speedup curve (Monte-Carlo max-edges model)\n\
              --vertices V --edges E --max-degree D --states S\n\
              --flops F [--bandwidth B --replication R] --max-n N\n\
         plan — cost/deadline provisioning over the gd model\n\
              (gd flags) --iterations K --price $/node-hour\n\
              [--deadline seconds | --budget amount]"
    );
    exit(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .unwrap_or_else(|| {
                eprintln!("unexpected argument {:?}", args[i]);
                usage()
            })
            .to_string();
        if key == "weak" {
            flags.insert(key, "true".to_string());
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("flag --{key} needs a value");
            usage()
        };
        flags.insert(key, value.clone());
        i += 2;
    }
    flags
}

fn num(flags: &HashMap<String, String>, key: &str, default: Option<f64>) -> f64 {
    match flags.get(key) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--{key}: cannot parse {v:?} as a number");
            usage()
        }),
        None => default.unwrap_or_else(|| {
            eprintln!("missing required flag --{key}");
            usage()
        }),
    }
}

fn gd_model(flags: &HashMap<String, String>) -> GradientDescentModel {
    if let Some(preset) = flags.get("preset") {
        return match preset.as_str() {
            "fig2" => GradientDescentModel {
                cost_per_example: FlopCount::new(6.0 * 12e6),
                batch_size: 60_000.0,
                params: 12e6,
                bits_per_param: 64,
                cluster: presets::spark_cluster(),
                comm: GdComm::Spark,
            },
            "fig3" => GradientDescentModel {
                cost_per_example: FlopCount::new(3.0 * 5e9),
                batch_size: 128.0,
                params: 25e6,
                bits_per_param: 32,
                cluster: presets::gpu_cluster(),
                comm: GdComm::TwoStageTree,
            },
            other => {
                eprintln!("unknown preset {other:?} (use fig2 or fig3)");
                usage()
            }
        };
    }
    let comm = match flags.get("comm").map(String::as_str).unwrap_or("tree") {
        "tree" => GdComm::TwoStageTree,
        "spark" => GdComm::Spark,
        "linear" => GdComm::LinearFlat,
        "ring" => GdComm::Ring,
        "none" => GdComm::None,
        other => {
            eprintln!("unknown --comm {other:?}");
            usage()
        }
    };
    GradientDescentModel {
        cost_per_example: FlopCount::new(num(flags, "cost-per-example", None)),
        batch_size: num(flags, "batch", None),
        params: num(flags, "params", None),
        bits_per_param: num(flags, "bits", Some(32.0)) as u32,
        cluster: ClusterSpec::new(
            NodeSpec::new(FlopsRate::new(num(flags, "flops", None)), 1.0),
            LinkSpec::bandwidth_only(BitsPerSec::new(num(flags, "bandwidth", Some(1e9)))),
        ),
        comm,
    }
}

fn cmd_gd(flags: &HashMap<String, String>) {
    let model = gd_model(flags);
    let max_n = num(flags, "max-n", Some(32.0)) as usize;
    let curve = if flags.contains_key("weak") {
        println!("weak scaling (per-instance time), n = 1..={max_n}:\n");
        model.weak_curve(1..=max_n)
    } else {
        println!("strong scaling (per-iteration time), n = 1..={max_n}:\n");
        model.strong_curve(1..=max_n)
    };
    println!("{}", curve.to_table());
    let (n_opt, s_opt) = curve.optimal();
    println!("optimal workers: {n_opt} (speedup {s_opt:.2}x)");
    println!("90%-of-peak knee: {}", curve.knee(0.9));
    if let Some(onset) = model.comm_dominance_onset(max_n) {
        println!("communication exceeds computation from n = {onset}");
    } else {
        println!("computation dominates across the whole range");
    }
}

fn cmd_bp(flags: &HashMap<String, String>) {
    let v = num(flags, "vertices", None);
    let e = num(flags, "edges", None);
    let d_max = num(flags, "max-degree", Some((2.0 * e / v * 10.0).max(4.0)));
    let states = num(flags, "states", Some(2.0)) as usize;
    let flops = FlopsRate::new(num(flags, "flops", Some(7.6e9)));
    let bandwidth = match flags.get("bandwidth") {
        Some(b) => BitsPerSec::new(b.parse().unwrap_or_else(|_| usage())),
        None => BitsPerSec::new(f64::INFINITY), // shared memory default
    };
    let replication = num(flags, "replication", Some(0.5));
    let max_n = num(flags, "max-n", Some(80.0)) as usize;

    // Degree sequence from the calibrated Zipf weights (rounded), as the
    // generator would realise it — no need to materialise the graph.
    let (weights, gamma) = zipf_weights(v as usize, d_max, 2.0 * e);
    let degrees: Vec<u32> = weights.iter().map(|&w| w.round().max(1.0) as u32).collect();
    println!(
        "degree model: Zipf gamma = {gamma:.3}, hub degree ~{d_max:.0}, avg {:.1}\n",
        2.0 * e / v
    );
    let mut rng = StdRng::seed_from_u64(0xC11);
    let loads: Vec<f64> = (1..=max_n)
        .map(|n| max_edges_monte_carlo(&degrees, n, 3, &mut rng))
        .collect();
    let model = GraphInferenceModel {
        vertices: v,
        edges: e,
        states,
        cost_per_edge: bp_cost_per_edge(states),
        flops,
        bandwidth,
        replication,
        edge_load: EdgeLoad::PerWorkerMax(loads),
    };
    let curve = model.curve(1..=max_n);
    println!("{}", curve.to_table());
    let (n_opt, s_opt) = curve.optimal();
    println!("optimal workers: {n_opt} (speedup {s_opt:.2}x)");
}

fn cmd_plan(flags: &HashMap<String, String>) {
    let model = gd_model(flags);
    let iterations = num(flags, "iterations", Some(1000.0));
    let price = num(flags, "price", Some(1.0));
    let max_n = num(flags, "max-n", Some(64.0)) as usize;
    let planner = Planner::new(
        move |n| model.strong_iteration_time(n) * iterations,
        max_n,
        Pricing::hourly(price),
    );
    let fastest = planner.fastest();
    let cheapest = planner.cheapest();
    println!(
        "fastest:  n = {:>3}, time {:>10.1} s, cost {:>10.2}",
        fastest.n,
        fastest.time.as_secs(),
        fastest.cost
    );
    println!(
        "cheapest: n = {:>3}, time {:>10.1} s, cost {:>10.2}",
        cheapest.n,
        cheapest.time.as_secs(),
        cheapest.cost
    );
    if let Some(deadline) = flags.get("deadline") {
        let deadline = Seconds::new(deadline.parse().unwrap_or_else(|_| usage()));
        match planner.cheapest_within_deadline(deadline) {
            Some(p) => println!(
                "cheapest within {:.0} s deadline: n = {}, time {:.1} s, cost {:.2}",
                deadline.as_secs(),
                p.n,
                p.time.as_secs(),
                p.cost
            ),
            None => println!(
                "no configuration up to n = {max_n} meets the {:.0} s deadline — \
                 the estimate prevented a doomed deployment",
                deadline.as_secs()
            ),
        }
    }
    if let Some(budget) = flags.get("budget") {
        let budget: f64 = budget.parse().unwrap_or_else(|_| usage());
        match planner.fastest_within_budget(budget) {
            Some(p) => println!(
                "fastest within budget {budget:.2}: n = {}, time {:.1} s, cost {:.2}",
                p.n,
                p.time.as_secs(),
                p.cost
            ),
            None => println!("even one node exceeds the budget of {budget:.2}"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        usage()
    };
    let flags = parse_flags(rest);
    match command.as_str() {
        "gd" => cmd_gd(&flags),
        "bp" => cmd_bp(&flags),
        "plan" => cmd_plan(&flags),
        _ => usage(),
    }
}
