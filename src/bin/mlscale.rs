//! `mlscale` — command-line scalability estimation, the paper's suggested
//! integration path ("the possible solution is to integrate the estimation
//! software with such tools as Spark, Hadoop, and Tensorflow").
//!
//! ```text
//! mlscale gd   --params 12e6 --cost-per-example 72e6 --batch 60000 \
//!              --flops 84.48e9 --bandwidth 1e9 --bits 64 --comm spark --max-n 16
//! mlscale gd   --preset fig3 --weak --max-n 200
//! mlscale gd   --preset pod --comm hier --max-n 64
//! mlscale bp   --vertices 165000 --edges 1013000 --max-degree 9800 --max-n 80
//! mlscale plan --preset fig2 --iterations 1000 --price 2.0 --deadline 7200
//! mlscale sweep scenarios/latency-grid.json
//! mlscale scenario explain scenarios/fig2.json
//! ```
//!
//! All flags take `--flag value` form; numbers accept scientific notation.
//! Every parsing failure is fatal: an unknown flag, an unknown `--comm` /
//! `--preset` value, or an unparsable number aborts with a message naming
//! the offending flag and a non-zero exit status — nothing silently falls
//! back to a default.

#![forbid(unsafe_code)]

use mlscale::graph::sampling::zipf_weights;
use mlscale::model::hardware::{presets, ClusterSpec, Heterogeneity, LinkSpec, NodeSpec, RackSpec};
use mlscale::model::models::gd::{GdComm, GradientDescentModel};
use mlscale::model::models::graphinf::{
    bp_cost_per_edge, max_edges_monte_carlo, EdgeLoad, GraphInferenceModel,
};
use mlscale::model::planner::{Planner, Pricing};
use mlscale::model::speedup::{log_spaced_ns, DENSE_EVAL_MAX_N};
use mlscale::model::straggler::{StragglerGdModel, StragglerModel};
use mlscale::model::units::{BitsPerSec, FlopCount, FlopsRate, Seconds};
use mlscale::scenario::{
    run_adaptive, run_checkpointed as sweep_run, run_sharded, write_outcome, ScenarioSpec,
    SweepOutcome, SweepSummary, DEFAULT_PER_POINT_MAX,
};
use mlscale::workloads::experiments::figures;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: mlscale <gd|bp|plan|sweep|scenario|serve> [--flag value]...\n\
         \n\
         gd   — gradient-descent speedup curve\n\
              --preset fig2|fig3|pod    load a paper/pod configuration\n\
              --params W --cost-per-example C --batch S --bits 32|64\n\
              --flops F --bandwidth B   effective flop/s and bit/s\n\
              --latency s               per-message link latency (alpha)\n\
              --comm tree|spark|linear|ring|halving|hier|none\n\
              --rack-size N             workers per rack (required by hier)\n\
              --uplink-bandwidth B --uplink-latency s   inter-rack uplink\n\
              --max-n N [--weak]        evaluate 1..=N, weak scaling optional\n\
              --log-points P            evaluate a P-point log-spaced ladder\n\
                                        to N instead of every n (required\n\
                                        above the dense-mode limit)\n\
              --straggler det|jitter:S|exp:MEAN|lognormal:MU:SIGMA\n\
                                        per-worker delay distribution (expected times)\n\
              --jitter S                shorthand for --straggler jitter:S\n\
              --hetero slow:COUNT:FACTOR|rack:FACTOR   mixed-speed workers\n\
              --backup-k K              drop the slowest K workers per step\n\
         bp   — graph-inference speedup curve (Monte-Carlo max-edges model)\n\
              --vertices V --edges E --max-degree D --states S\n\
              --flops F [--bandwidth B --replication R] --max-n N\n\
         plan — cost/deadline provisioning over the gd model\n\
              (gd flags) --iterations K --price $/node-hour\n\
              [--deadline seconds | --budget amount] [--log-points P]\n\
         sweep <file.json> [--out DIR] [--resume] [--adaptive]\n\
              [--per-point-max N]\n\
              evaluate the scenario's grid and write results plus a\n\
              roll-up (default DIR: results/sweeps/<name>). Grids up to\n\
              --per-point-max points (default 2048) write one JSON file\n\
              per point; larger grids stream into NDJSON shards of that\n\
              many records, never holding more than one shard in memory.\n\
              Completed work is journaled and --resume skips it (refused\n\
              if the scenario changed). --adaptive (or \"adaptive\": true\n\
              in the spec) evaluates a coarse sub-grid and refines only\n\
              around the (cost, time) Pareto frontier. A machine-readable\n\
              `summary {{...}}` line closes every sweep\n\
         scenario <validate|explain> <file.json>\n\
              check a scenario spec / print its expanded grid\n\
         serve [--addr HOST:PORT] [--threads N]\n\
              long-lived planner daemon: POST scenario-spec JSON to\n\
              /gd, /plan or /sweep (default addr 127.0.0.1:7878; port 0\n\
              picks a free port; threads default to MLSCALE_THREADS or\n\
              the machine width)"
    );
    exit(2)
}

/// Fatal flag error: names the offending flag, exits non-zero.
fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run `mlscale` with no arguments for usage");
    exit(2)
}

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &["weak", "resume", "adaptive"];

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            die(format_args!(
                "unexpected argument {:?} (flags take --flag value form)",
                args[i]
            ))
        };
        let key = key.to_string();
        if key.is_empty() {
            die("empty flag name `--`");
        }
        let (value, step) = if BOOLEAN_FLAGS.contains(&key.as_str()) {
            ("true".to_string(), 1)
        } else {
            match args.get(i + 1) {
                Some(v) => (v.clone(), 2),
                None => die(format_args!("flag --{key} needs a value")),
            }
        };
        if flags.insert(key.clone(), value).is_some() {
            die(format_args!("flag --{key} given more than once"));
        }
        i += step;
    }
    flags
}

/// Rejects any flag outside `allowed`, naming the offender and command.
fn check_allowed(command: &str, flags: &HashMap<String, String>, allowed: &[&str]) {
    for key in flags.keys() {
        if !allowed.contains(&key.as_str()) {
            die(format_args!("unknown flag --{key} for `mlscale {command}`"));
        }
    }
}

/// Parses a required (or defaulted) finite, non-negative number, naming
/// the flag on failure.
fn num(flags: &HashMap<String, String>, key: &str, default: Option<f64>) -> f64 {
    let v = match flags.get(key) {
        Some(v) => match v.parse::<f64>() {
            Ok(x) => x,
            Err(_) => die(format_args!("--{key}: cannot parse {v:?} as a number")),
        },
        None => match default {
            Some(d) => d,
            None => die(format_args!("missing required flag --{key}")),
        },
    };
    if !v.is_finite() || v < 0.0 {
        die(format_args!(
            "--{key}: expected a finite non-negative number, got {v}"
        ));
    }
    v
}

/// Like [`num`] but rejects zero — for quantities the models divide by
/// (flop rates, bandwidths, workload sizes), where 0 would otherwise
/// surface as a panic or an inf/NaN curve deep inside the evaluation.
fn pos(flags: &HashMap<String, String>, key: &str, default: Option<f64>) -> f64 {
    let v = num(flags, key, default);
    if v == 0.0 {
        die(format_args!("--{key}: must be positive, got 0"));
    }
    v
}

/// Parses a strictly positive integer (no silent truncation of `3.7` or
/// `-1`), naming the flag on failure.
fn int(flags: &HashMap<String, String>, key: &str, default: Option<usize>) -> usize {
    match flags.get(key) {
        Some(v) => match v.parse::<usize>() {
            Ok(0) => die(format_args!("--{key}: must be at least 1")),
            Ok(x) => x,
            Err(_) => die(format_args!(
                "--{key}: cannot parse {v:?} as a positive integer"
            )),
        },
        None => match default {
            Some(d) => d,
            None => die(format_args!("missing required flag --{key}")),
        },
    }
}

/// Parses a non-negative integer (unlike [`int`], zero is allowed —
/// `--backup-k 0` explicitly disables the mitigation).
fn uint(flags: &HashMap<String, String>, key: &str, default: usize) -> usize {
    match flags.get(key) {
        Some(v) => v.parse::<usize>().unwrap_or_else(|_| {
            die(format_args!(
                "--{key}: cannot parse {v:?} as a non-negative integer"
            ))
        }),
        None => default,
    }
}

/// Straggler-scenario flags (valid for `gd` and `plan`, composable with
/// `--preset`: presets fix the hardware and workload, the scenario is an
/// orthogonal runtime axis).
const STRAGGLER_FLAGS: &[&str] = &["straggler", "jitter", "hetero", "backup-k"];

/// One numeric field of a colon-separated spec value, naming flag and
/// field on failure.
fn spec_num(flag: &str, field: &str, raw: &str) -> f64 {
    match raw.parse::<f64>() {
        Ok(v) if v.is_finite() => v,
        _ => die(format_args!(
            "--{flag}: cannot parse {field} {raw:?} as a finite number"
        )),
    }
}

/// Parses `--straggler` / `--jitter` into a delay distribution.
fn parse_straggler_model(flags: &HashMap<String, String>) -> StragglerModel {
    if flags.contains_key("straggler") && flags.contains_key("jitter") {
        die("--jitter is shorthand for --straggler jitter:S; pass only one of them");
    }
    if let Some(spread) = flags.get("jitter") {
        let s = spec_num("jitter", "spread", spread);
        if s < 0.0 {
            die(format_args!(
                "--jitter: spread must be non-negative, got {s}"
            ));
        }
        return StragglerModel::BoundedJitter { spread: s };
    }
    let Some(spec) = flags.get("straggler") else {
        return StragglerModel::Deterministic;
    };
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["det"] => StragglerModel::Deterministic,
        ["jitter", s] => {
            let spread = spec_num("straggler", "spread", s);
            if spread < 0.0 {
                die(format_args!(
                    "--straggler: jitter spread must be non-negative, got {spread}"
                ));
            }
            StragglerModel::BoundedJitter { spread }
        }
        ["exp", m] => {
            let mean = spec_num("straggler", "mean", m);
            if mean < 0.0 {
                die(format_args!(
                    "--straggler: exponential mean must be non-negative, got {mean}"
                ));
            }
            StragglerModel::ExponentialTail { mean }
        }
        ["lognormal", mu, sigma] => {
            let mu = spec_num("straggler", "mu", mu);
            let sigma = spec_num("straggler", "sigma", sigma);
            if sigma < 0.0 {
                die(format_args!(
                    "--straggler: lognormal sigma must be non-negative, got {sigma}"
                ));
            }
            StragglerModel::LogNormalTail { mu, sigma }
        }
        _ => die(format_args!(
            "unknown --straggler {spec:?} (use det, jitter:S, exp:MEAN or lognormal:MU:SIGMA)"
        )),
    }
}

/// Parses `--hetero` into a heterogeneity spec, validating it against the
/// cluster (rack heterogeneity needs a rack topology).
fn parse_hetero(flags: &HashMap<String, String>, cluster: &ClusterSpec) -> Heterogeneity {
    let Some(spec) = flags.get("hetero") else {
        return Heterogeneity::Uniform;
    };
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["slow", count, factor] => {
            let count = count.parse::<usize>().unwrap_or_else(|_| {
                die(format_args!(
                    "--hetero: cannot parse worker count {count:?} as a non-negative integer"
                ))
            });
            let factor = spec_num("hetero", "factor", factor);
            if factor <= 0.0 {
                die(format_args!(
                    "--hetero: speed factor must be positive, got {factor}"
                ));
            }
            Heterogeneity::SlowWorkers { count, factor }
        }
        ["rack", factor] => {
            if cluster.rack.is_none() {
                die(
                    "--hetero rack:FACTOR needs a rack topology: pass --rack-size \
                     or use --preset pod (flat presets like fig2/fig3 conflict with it)",
                );
            }
            let factor = spec_num("hetero", "factor", factor);
            if factor <= 0.0 {
                die(format_args!(
                    "--hetero: speed factor must be positive, got {factor}"
                ));
            }
            Heterogeneity::RackDecay { factor }
        }
        _ => die(format_args!(
            "unknown --hetero {spec:?} (use slow:COUNT:FACTOR or rack:FACTOR)"
        )),
    }
}

/// Assembles the full straggler scenario for a command, or `None` when no
/// scenario flag was given (deterministic output paths).
fn parse_scenario(
    flags: &HashMap<String, String>,
    cluster: &ClusterSpec,
    max_n: usize,
) -> Option<(StragglerModel, Heterogeneity, usize)> {
    let straggler = parse_straggler_model(flags);
    let hetero = parse_hetero(flags, cluster);
    let backup_k = uint(flags, "backup-k", 0);
    if backup_k >= max_n {
        die(format_args!(
            "--backup-k: dropping {backup_k} workers leaves nothing at --max-n {max_n}; \
             use a value below the cluster size"
        ));
    }
    let scenario_given = flags.keys().any(|k| STRAGGLER_FLAGS.contains(&k.as_str()));
    if !scenario_given {
        return None;
    }
    if backup_k > 0 && straggler.is_zero() && hetero.is_uniform() {
        die(
            "--backup-k has no effect without a straggler distribution or \
             heterogeneity; add --straggler/--jitter/--hetero or drop it",
        );
    }
    Some((straggler, hetero, backup_k))
}

/// Flags accepted by the gd model builder (shared by `gd` and `plan`).
const GD_MODEL_FLAGS: &[&str] = &[
    "preset",
    "params",
    "cost-per-example",
    "batch",
    "bits",
    "flops",
    "bandwidth",
    "latency",
    "comm",
    "rack-size",
    "uplink-bandwidth",
    "uplink-latency",
];

fn gd_model(flags: &HashMap<String, String>) -> GradientDescentModel {
    if let Some(preset) = flags.get("preset") {
        // A preset is a complete hardware+workload configuration; mixing
        // it with hand-set model flags would silently ignore them. Only
        // --comm may override a preset (it swaps the collective, not the
        // hardware or workload).
        for &key in GD_MODEL_FLAGS
            .iter()
            .filter(|&&k| k != "preset" && k != "comm")
        {
            if flags.contains_key(key) {
                die(format_args!(
                    "--{key} conflicts with --preset {preset} (presets fix the model; \
                     drop --preset to configure by hand)"
                ));
            }
        }
        // The models come from the canonical exhibit definitions, so the
        // presets cannot drift from the figures they name.
        let mut model = match preset.as_str() {
            "fig2" => figures::fig2_model(),
            "fig3" => figures::fig3_model(),
            // The MNIST job on the two-tier rack pod (hierarchical study).
            "pod" => GradientDescentModel {
                cluster: presets::two_tier_pod(),
                comm: GdComm::Hierarchical,
                ..figures::fig2_model()
            },
            other => die(format_args!(
                "unknown --preset {other:?} (use fig2, fig3 or pod)"
            )),
        };
        if flags.contains_key("comm") {
            model.comm = parse_comm(flags, &model.cluster);
        }
        return model;
    }
    let bandwidth = BitsPerSec::new(pos(flags, "bandwidth", Some(1e9)));
    let latency = Seconds::new(num(flags, "latency", Some(0.0)));
    let mut cluster = ClusterSpec::new(
        NodeSpec::new(FlopsRate::new(pos(flags, "flops", None)), 1.0),
        LinkSpec::new(bandwidth, latency),
    );
    if flags.contains_key("rack-size") {
        let uplink = LinkSpec::new(
            BitsPerSec::new(pos(flags, "uplink-bandwidth", Some(bandwidth.get()))),
            Seconds::new(num(flags, "uplink-latency", Some(latency.as_secs()))),
        );
        cluster = cluster.with_racks(RackSpec::new(int(flags, "rack-size", None), uplink));
    } else if flags.contains_key("uplink-bandwidth") || flags.contains_key("uplink-latency") {
        die("--uplink-bandwidth/--uplink-latency need --rack-size to define the racks");
    }
    let bits = int(flags, "bits", Some(32));
    let bits_per_param =
        u32::try_from(bits).unwrap_or_else(|_| die(format_args!("--bits: {bits} is out of range")));
    GradientDescentModel {
        cost_per_example: FlopCount::new(pos(flags, "cost-per-example", None)),
        batch_size: pos(flags, "batch", None),
        params: pos(flags, "params", None),
        bits_per_param,
        cluster,
        comm: parse_comm(flags, &cluster),
    }
}

fn parse_comm(flags: &HashMap<String, String>, cluster: &ClusterSpec) -> GdComm {
    match flags.get("comm").map(String::as_str).unwrap_or("tree") {
        "tree" => GdComm::TwoStageTree,
        "spark" => GdComm::Spark,
        "linear" => GdComm::LinearFlat,
        "ring" => GdComm::Ring,
        "halving" => GdComm::HalvingDoubling,
        "hier" => {
            if cluster.rack.is_none() {
                die("--comm hier needs a rack topology: pass --rack-size \
                     (and optionally --uplink-bandwidth/--uplink-latency), \
                     or use --preset pod");
            }
            GdComm::Hierarchical
        }
        "none" => GdComm::None,
        other => die(format_args!(
            "unknown --comm {other:?} (use tree, spark, linear, ring, halving, hier or none)"
        )),
    }
}

/// Parses `--log-points` and enforces the dense-mode ceiling: above
/// [`DENSE_EVAL_MAX_N`] a dense `1..=max_n` sweep is one table entry and
/// one model call per n, so it is refused unless the caller opts into the
/// log-spaced ladder.
fn log_points_flag(flags: &HashMap<String, String>, max_n: usize) -> Option<usize> {
    let points = flags
        .contains_key("log-points")
        .then(|| int(flags, "log-points", None));
    if let Some(p) = points {
        if p < 2 {
            die(format_args!(
                "--log-points: a log-spaced ladder needs at least its two endpoints, got {p}"
            ));
        }
    }
    if points.is_none() && max_n > DENSE_EVAL_MAX_N {
        die(format_args!(
            "--max-n: {max_n} exceeds the dense-mode limit {DENSE_EVAL_MAX_N}; \
             pass --log-points (e.g. 200) to evaluate a log-spaced ladder instead"
        ));
    }
    points
}

/// The worker counts a gd/plan verb evaluates: dense `1..=max_n`, or a
/// log-spaced ladder when `--log-points` is given.
fn sweep_ns(max_n: usize, log_points: Option<usize>) -> (Vec<usize>, String) {
    match log_points {
        Some(p) => (
            log_spaced_ns(max_n, p),
            format!("n on a {p}-point log ladder to {max_n}"),
        ),
        None => ((1..=max_n).collect(), format!("n = 1..={max_n}")),
    }
}

fn cmd_gd(flags: &HashMap<String, String>) {
    let mut allowed = GD_MODEL_FLAGS.to_vec();
    allowed.extend(["max-n", "weak", "log-points"]);
    allowed.extend(STRAGGLER_FLAGS);
    check_allowed("gd", flags, &allowed);
    let model = gd_model(flags);
    let max_n = int(flags, "max-n", Some(32));
    let log_points = log_points_flag(flags, max_n);
    let (ns, range) = sweep_ns(max_n, log_points);
    let scenario = parse_scenario(flags, &model.cluster, max_n);
    let weak = flags.contains_key("weak");
    let curve = match scenario {
        Some((straggler, hetero, backup_k)) => {
            let wrapped = StragglerGdModel {
                inner: model,
                straggler,
                hetero,
                backup_k,
            };
            if weak {
                println!("expected weak scaling under stragglers (per-instance time), {range}:\n");
                wrapped.weak_curve(ns)
            } else {
                println!(
                    "expected strong scaling under stragglers (per-iteration time), {range}:\n"
                );
                wrapped.strong_curve(ns)
            }
        }
        None if weak => {
            println!("weak scaling (per-instance time), {range}:\n");
            model.weak_curve(ns)
        }
        None => {
            println!("strong scaling (per-iteration time), {range}:\n");
            model.strong_curve(ns)
        }
    };
    println!("{}", curve.to_table());
    let (n_opt, s_opt) = curve.optimal();
    println!("optimal workers: {n_opt} (speedup {s_opt:.2}x)");
    println!("90%-of-peak knee: {}", curve.knee(0.9));
    if let Some(onset) = model.comm_dominance_onset(max_n) {
        println!("communication exceeds computation from n = {onset}");
    } else {
        println!("computation dominates across the whole range");
    }
}

fn cmd_bp(flags: &HashMap<String, String>) {
    check_allowed(
        "bp",
        flags,
        &[
            "vertices",
            "edges",
            "max-degree",
            "states",
            "flops",
            "bandwidth",
            "replication",
            "max-n",
        ],
    );
    let v = pos(flags, "vertices", None);
    let e = pos(flags, "edges", None);
    let d_max = pos(flags, "max-degree", Some((2.0 * e / v * 10.0).max(4.0)));
    let states = int(flags, "states", Some(2));
    let flops = FlopsRate::new(pos(flags, "flops", Some(7.6e9)));
    let bandwidth = match flags.get("bandwidth") {
        Some(_) => BitsPerSec::new(pos(flags, "bandwidth", None)),
        None => BitsPerSec::new(f64::INFINITY), // shared memory default
    };
    let replication = num(flags, "replication", Some(0.5));
    let max_n = int(flags, "max-n", Some(80));
    if max_n > DENSE_EVAL_MAX_N {
        die(format_args!(
            "--max-n: {max_n} exceeds the dense-mode limit {DENSE_EVAL_MAX_N}; \
             the bp workload Monte-Carlo loads every n in 1..=max-n"
        ));
    }

    // Degree sequence from the calibrated Zipf weights (rounded), as the
    // generator would realise it — no need to materialise the graph.
    let (weights, gamma) = zipf_weights(v as usize, d_max, 2.0 * e);
    let degrees: Vec<u32> = weights.iter().map(|&w| w.round().max(1.0) as u32).collect();
    println!(
        "degree model: Zipf gamma = {gamma:.3}, hub degree ~{d_max:.0}, avg {:.1}\n",
        2.0 * e / v
    );
    let mut rng = StdRng::seed_from_u64(0xC11);
    let loads: Vec<f64> = (1..=max_n)
        .map(|n| max_edges_monte_carlo(&degrees, n, 3, &mut rng))
        .collect();
    let model = GraphInferenceModel {
        vertices: v,
        edges: e,
        states,
        cost_per_edge: bp_cost_per_edge(states),
        flops,
        bandwidth,
        replication,
        edge_load: EdgeLoad::PerWorkerMax(loads),
    };
    let curve = model.curve(1..=max_n);
    println!("{}", curve.to_table());
    let (n_opt, s_opt) = curve.optimal();
    println!("optimal workers: {n_opt} (speedup {s_opt:.2}x)");
}

fn cmd_plan(flags: &HashMap<String, String>) {
    let mut allowed = GD_MODEL_FLAGS.to_vec();
    allowed.extend([
        "iterations",
        "price",
        "max-n",
        "deadline",
        "budget",
        "log-points",
    ]);
    allowed.extend(STRAGGLER_FLAGS);
    check_allowed("plan", flags, &allowed);
    let model = gd_model(flags);
    let iterations = pos(flags, "iterations", Some(1000.0));
    let price = pos(flags, "price", Some(1.0));
    let max_n = int(flags, "max-n", Some(64));
    let log_points = log_points_flag(flags, max_n);
    let scenario = parse_scenario(flags, &model.cluster, max_n);
    if scenario.is_some() {
        println!("planning over *expected* times under the straggler scenario");
    }
    // The sweep is evaluated once into the planner's cached table (all
    // four query verbs reuse it) and fans out across threads; the
    // straggler path additionally shares one order-statistic grid pass
    // across the whole sweep. With --log-points the table is a log-spaced
    // ladder refined around each optimum instead of a dense 1..=max_n scan.
    let planner = match scenario {
        Some((straggler, hetero, backup_k)) => {
            let wrapped = StragglerGdModel {
                inner: model,
                straggler,
                hetero,
                backup_k,
            };
            match log_points {
                Some(p) => wrapped.planner_log(iterations, max_n, Pricing::hourly(price), p),
                None => wrapped.planner(iterations, max_n, Pricing::hourly(price)),
            }
        }
        None => {
            let time = move |n| model.strong_iteration_time(n) * iterations;
            match log_points {
                Some(p) => Planner::new_log(time, max_n, Pricing::hourly(price), p),
                None => Planner::new_par(time, max_n, Pricing::hourly(price)),
            }
        }
    };
    let fastest = planner.fastest();
    let cheapest = planner.cheapest();
    println!(
        "fastest:  n = {:>3}, time {:>10.1} s, cost {:>10.2}",
        fastest.n,
        fastest.time.as_secs(),
        fastest.cost
    );
    println!(
        "cheapest: n = {:>3}, time {:>10.1} s, cost {:>10.2}",
        cheapest.n,
        cheapest.time.as_secs(),
        cheapest.cost
    );
    if flags.contains_key("deadline") {
        let deadline = Seconds::new(num(flags, "deadline", None));
        match planner.cheapest_within_deadline(deadline) {
            Some(p) => println!(
                "cheapest within {:.0} s deadline: n = {}, time {:.1} s, cost {:.2}",
                deadline.as_secs(),
                p.n,
                p.time.as_secs(),
                p.cost
            ),
            None => println!(
                "no configuration up to n = {max_n} meets the {:.0} s deadline — \
                 the estimate prevented a doomed deployment",
                deadline.as_secs()
            ),
        }
    }
    if flags.contains_key("budget") {
        let budget = num(flags, "budget", None);
        match planner.fastest_within_budget(budget) {
            Some(p) => println!(
                "fastest within budget {budget:.2}: n = {}, time {:.1} s, cost {:.2}",
                p.n,
                p.time.as_secs(),
                p.cost
            ),
            None => println!("even one node exceeds the budget of {budget:.2}"),
        }
    }
}

/// Loads and validates a scenario file, exiting with status 2 and the
/// offending key's full path on any failure.
fn load_scenario(path: &str) -> ScenarioSpec {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(format_args!("cannot read scenario {path}: {e}")));
    ScenarioSpec::from_json(&text).unwrap_or_else(|e| die(format_args!("{path}: {e}")))
}

/// Splits a verb's arguments into one leading positional (the scenario
/// file) and the trailing `--flag value` pairs.
fn positional<'a>(command: &str, args: &'a [String]) -> (&'a str, &'a [String]) {
    match args.first() {
        Some(first) if !first.starts_with("--") => (first, &args[1..]),
        _ => die(format_args!(
            "`mlscale {command}` needs a scenario file as its first argument"
        )),
    }
}

fn cmd_sweep(args: &[String]) {
    let (path, rest) = positional("sweep", args);
    let flags = parse_flags(rest);
    check_allowed(
        "sweep",
        &flags,
        &["out", "resume", "adaptive", "per-point-max"],
    );
    let resume = flags.contains_key("resume");
    let per_point_max = int(&flags, "per-point-max", Some(DEFAULT_PER_POINT_MAX));
    let mut spec = load_scenario(path);
    if flags.contains_key("adaptive") {
        spec.adaptive = true;
        if spec.sweep.is_empty() {
            die("--adaptive: adaptive refinement needs a non-empty sweep (there is no grid to refine)");
        }
    }
    // The grid size comes from the axis lengths — the engine generates
    // (and labels) the points lazily; nothing is expanded here.
    let grid_size = spec
        .grid_len()
        .unwrap_or_else(|e| die(format_args!("{path}: {e}")));
    let out_dir = match flags.get("out") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::path::PathBuf::from("results/sweeps").join(&spec.name),
    };
    println!(
        "sweep {}: {} grid point(s), {} axis/axes",
        spec.name,
        grid_size,
        spec.sweep.len()
    );

    let summary = if spec.adaptive {
        // Adaptive: evaluate a coarse sub-grid, refine around the
        // (cost, time) Pareto frontier. The point selection depends on
        // what has been seen, so there is no journal to resume from.
        if resume {
            die(
                "--resume: an adaptive sweep picks its points from the frontier as it goes, \
                 so there is no journal to resume — drop --resume (adaptive re-runs are cheap) \
                 or drop --adaptive",
            );
        }
        let adaptive = run_adaptive(&spec).unwrap_or_else(|e| die(format_args!("{path}: {e}")));
        let paths = write_outcome(&adaptive.outcome, &out_dir).unwrap_or_else(|e| {
            die(format_args!(
                "cannot write results to {}: {e}",
                out_dir.display()
            ))
        });
        println!(
            "adaptive: evaluated {} of {} grid point(s), {} on the frontier",
            adaptive.outcome.points.len(),
            grid_size,
            adaptive.frontier.len()
        );
        print_point_table(&adaptive.outcome);
        println!();
        for f in &adaptive.frontier {
            println!("frontier: {}  cost {}  time {} s", f.id, f.cost, f.time);
        }
        print_wrote_line(paths.len(), &out_dir, paths.last());
        SweepSummary {
            name: spec.name.clone(),
            mode: "adaptive",
            grid_points: grid_size,
            evaluated: adaptive.outcome.points.len(),
            resumed: 0,
            files: paths.len(),
            shards: 0,
            frontier: adaptive.frontier.iter().map(|f| (f.cost, f.time)).collect(),
        }
    } else if grid_size <= per_point_max {
        // Per-point files, journaled as each point lands, so an
        // interrupted run picks up with --resume instead of starting
        // over.
        let checkpointed =
            sweep_run(&spec, &out_dir, resume).unwrap_or_else(|e| die(format_args!("{path}: {e}")));
        if checkpointed.resumed > 0 {
            println!(
                "resumed: {} of {} point(s) restored from the journal",
                checkpointed.resumed, grid_size
            );
        }
        print_point_table(&checkpointed.outcome);
        print_wrote_line(
            checkpointed.paths.len(),
            &out_dir,
            checkpointed.paths.last(),
        );
        SweepSummary {
            name: spec.name.clone(),
            mode: "per-point",
            grid_points: grid_size,
            evaluated: grid_size,
            resumed: checkpointed.resumed,
            files: checkpointed.paths.len(),
            shards: 0,
            frontier: Vec::new(),
        }
    } else {
        // Past the per-point threshold the sweep streams through the
        // sharded store: NDJSON shards of up to --per-point-max records,
        // journaled per shard, never holding more than one shard in
        // memory.
        let sharded = run_sharded(&spec, &out_dir, resume, per_point_max)
            .unwrap_or_else(|e| die(format_args!("{path}: {e}")));
        if sharded.resumed > 0 {
            println!(
                "resumed: {} of {} point(s) restored from the journal",
                sharded.resumed, grid_size
            );
        }
        println!(
            "sharded store: {} shard(s) of up to {} record(s) each (grid exceeds --per-point-max {})",
            sharded.shards, per_point_max, per_point_max
        );
        print_wrote_line(sharded.paths.len(), &out_dir, sharded.paths.last());
        SweepSummary {
            name: spec.name.clone(),
            mode: "sharded",
            grid_points: grid_size,
            evaluated: grid_size,
            resumed: sharded.resumed,
            files: sharded.paths.len(),
            shards: sharded.shards,
            frontier: Vec::new(),
        }
    };
    match summary.to_json() {
        Ok(json) => println!("summary {json}"),
        Err(e) => die(e),
    }
}

/// The per-point stdout table (per-point and adaptive modes — sharded
/// sweeps are far too large to print).
fn print_point_table(outcome: &SweepOutcome) {
    println!(
        "\n{:<24} {:>10} {:>14} {:>16}",
        "point", "optimal n", "peak speedup", "time at opt (s)"
    );
    for (point, result) in outcome.grid.iter().zip(&outcome.points) {
        // Exhibit results carry their own stat labels (e.g. "optimal n
        // (model, full range)"), so a missing generic stat renders as a
        // dash, not a bogus 0/NaN.
        let stat = |label: &str, decimals: usize| {
            result
                .stats
                .iter()
                .find(|s| s.label == label)
                .map_or_else(|| "-".to_string(), |s| format!("{:.*}", decimals, s.value))
        };
        println!(
            "{:<24} {:>10} {:>14} {:>16}   {}",
            result.id,
            stat("optimal n", 0),
            stat("peak speedup", 3),
            stat("time at optimum s", 6),
            point.label()
        );
    }
}

fn print_wrote_line(files: usize, out_dir: &std::path::Path, rollup: Option<&std::path::PathBuf>) {
    println!(
        "\nwrote {} results file(s) to {} (roll-up: {})",
        files,
        out_dir.display(),
        rollup.map(|p| p.display().to_string()).unwrap_or_default()
    );
}

fn cmd_scenario(args: &[String]) {
    let Some((verb, rest)) = args.split_first() else {
        die("`mlscale scenario` needs a sub-command: validate or explain")
    };
    match verb.as_str() {
        "validate" => {
            let (path, rest) = positional("scenario validate", rest);
            check_allowed("scenario validate", &parse_flags(rest), &[]);
            // `load_scenario` already dry-ran every grid point through
            // `ScenarioSpec::validate` (streaming — the cross product is
            // never materialised); only the count is needed here.
            let spec = load_scenario(path);
            let total = spec
                .grid_len()
                .unwrap_or_else(|e| die(format_args!("{path}: {e}")));
            println!(
                "ok: {} — {} grid point(s) over {} axis/axes",
                spec.name,
                total,
                spec.sweep.len()
            );
        }
        "explain" => {
            let (path, rest) = positional("scenario explain", rest);
            check_allowed("scenario explain", &parse_flags(rest), &[]);
            let spec = load_scenario(path);
            println!("scenario {} — {}", spec.name, spec.display_title());
            let kind = match &spec.workload {
                mlscale::scenario::WorkloadSpec::Gd(gd) => format!(
                    "gd ({}, max_n {}, {})",
                    gd.preset.as_deref().map_or_else(
                        || "explicit hardware".to_string(),
                        |p| format!("preset {p}")
                    ),
                    gd.max_n,
                    if gd.weak {
                        "weak scaling"
                    } else {
                        "strong scaling"
                    }
                ),
                mlscale::scenario::WorkloadSpec::Bp(bp) => {
                    format!("bp (V={}, E={}, max_n {})", bp.vertices, bp.edges, bp.max_n)
                }
                mlscale::scenario::WorkloadSpec::Exhibit(ex) => {
                    format!("exhibit {} (byte-identical to its binary)", ex.id)
                }
            };
            println!("workload: {kind}");
            for (i, axis) in spec.sweep.iter().enumerate() {
                let values: Vec<String> = axis.values.iter().map(|v| v.to_string()).collect();
                println!("axis {i}: {} = [{}]", axis.param, values.join(", "));
            }
            let total = spec
                .grid_len()
                .unwrap_or_else(|e| die(format_args!("{path}: {e}")));
            println!("grid: {total} point(s)");
            // Streamed, one point at a time — explaining a million-point
            // grid costs a million lines of stdout, not a million resident
            // GridPoints.
            let points = spec
                .grid_iter()
                .unwrap_or_else(|e| die(format_args!("{path}: {e}")));
            for point in points {
                println!(
                    "  {}  {}",
                    point.id,
                    if point.assignments.is_empty() {
                        "single configuration".to_string()
                    } else {
                        point.label()
                    }
                );
            }
        }
        other => die(format_args!(
            "unknown scenario sub-command {other:?} (use validate or explain)"
        )),
    }
}

/// Runs the planner daemon (`mlscale serve`). Startup is refused with a
/// named exit-2 diagnostic — never a panic — on an unusable `--addr`,
/// `--threads`, or `MLSCALE_THREADS`.
fn cmd_serve(flags: &HashMap<String, String>) {
    check_allowed("serve", flags, &["addr", "threads"]);
    let addr = flags.get("addr").map_or("127.0.0.1:7878", String::as_str);
    let threads = match flags.contains_key("threads") {
        true => int(flags, "threads", None),
        false => mlscale::model::par::try_thread_count().unwrap_or_else(|e| die(e)),
    };
    let server = mlscale::serve::Server::bind(addr, threads)
        .unwrap_or_else(|e| die(format_args!("--addr: cannot bind {addr:?}: {e}")));
    let local = server
        .local_addr()
        .unwrap_or_else(|e| die(format_args!("cannot read the bound address: {e}")));
    println!(
        "listening on http://{local} ({} worker thread(s))",
        server.threads()
    );
    println!("endpoints: POST /gd, /plan, /sweep — scenario-spec JSON bodies");
    // SIGTERM/SIGINT drain: stop accepting, answer what is in flight,
    // then run() returns and the process exits 0.
    mlscale::serve::signal::install();
    server.run();
    println!("drained: in-flight requests finished, listener closed");
}

fn main() {
    // Validate MLSCALE_THREADS and MLSCALE_FAULTS up front for every
    // verb: a typo'd value must be a named exit-2 diagnostic, not a
    // panic out of the first parallel map or a silently unarmed fault.
    if let Err(e) = mlscale::model::par::try_thread_count() {
        die(e);
    }
    if let Err(e) = mlscale::model::faultpoint::check_env() {
        die(e);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        usage()
    };
    match command.as_str() {
        "gd" => cmd_gd(&parse_flags(rest)),
        "bp" => cmd_bp(&parse_flags(rest)),
        "plan" => cmd_plan(&parse_flags(rest)),
        "sweep" => cmd_sweep(rest),
        "scenario" => cmd_scenario(rest),
        "serve" => cmd_serve(&parse_flags(rest)),
        other => die(format_args!(
            "unknown command {other:?} (use gd, bp, plan, sweep, scenario or serve)"
        )),
    }
}
