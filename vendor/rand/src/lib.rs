//! Vendored minimal stand-in for the `rand` crate, API-compatible with the
//! subset of rand 0.8 this workspace uses (`Rng::gen`, `Rng::gen_range`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`).
//!
//! The container this repo builds in has no access to crates.io, so the
//! workspace vendors the handful of external crates it needs. `StdRng` here
//! is xoshiro256++ seeded through SplitMix64 — not the same stream as the
//! real `StdRng` (ChaCha12), but a high-quality generator that keeps every
//! seeded test deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random `u32`/`u64`s.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] exactly as in rand 0.8.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers over their full range).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples a value uniformly from the given range, which must be
    /// non-empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Distributions over random values (the subset the workspace uses).
pub mod distributions {
    use super::Rng;

    /// A distribution of values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: uniform `[0, 1)` for floats, full
    /// range for integers.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits → uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// A range that can be sampled uniformly (`Range` / `RangeInclusive` over
/// the primitive numeric types the workspace draws from).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if it is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw `u64` onto `[0, bound)` with a widening multiply
/// (Lemire's method without the rejection step; bias is < bound / 2^64,
/// which is negligible for the range sizes used here).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let x = self.start + (self.end - self.start) * u as $t;
                // Rounding in the scale-and-shift can land exactly on `end`
                // (~2^-25 per f32 draw); redraw from `start` to keep the
                // documented half-open contract.
                if x >= self.end {
                    self.start
                } else {
                    x
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                lo + (hi - lo) * u as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The generators themselves.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as the real rand `StdRng`, but statistically
    /// strong and stable across runs, which is what the seeded tests need.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A small, fast generator; here an alias for [`StdRng`].
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let i = rng.gen_range(0usize..10);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let x = rng.gen_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&x));
        }
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
