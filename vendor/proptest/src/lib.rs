//! Vendored minimal stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property suites use: the
//! `proptest!` macro with a `#![proptest_config(...)]` block attribute,
//! numeric-range strategies, `prop::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking: each test function draws
//! `cases` inputs from a fixed-seed deterministic RNG (so failures are
//! reproducible) and runs the body; assertion macros panic directly with
//! the offending case's inputs already bound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rand::rngs::StdRng;
pub use rand::SeedableRng;

use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
    /// Seed for the deterministic case generator.
    pub rng_seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            rng_seed: 0x1cde_2017,
        }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A source of random values of a fixed type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategies over collections.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `len` and
    /// elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror of real proptest's `prop` module path
/// (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The things a property test file needs in scope.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property; panics with the formatted
/// message on failure (no shrinking in this vendored version).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property test functions: each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` that checks the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = <$crate::StdRng as $crate::SeedableRng>::seed_from_u64(
                __config.rng_seed,
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_obeys_len(v in prop::collection::vec(0.0f64..5.0, 2..20)) {
            prop_assert!(v.len() >= 2 && v.len() < 20);
            prop_assert!(v.iter().all(|&x| (0.0..5.0).contains(&x)));
        }
    }

    #[test]
    fn default_config_budget_is_modest() {
        assert!(ProptestConfig::default().cases <= 256);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}
