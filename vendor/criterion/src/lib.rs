//! Vendored minimal stand-in for the `criterion` benchmarking crate.
//!
//! Implements the subset this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `Throughput`,
//! `criterion_group!` / `criterion_main!` — with a simple fixed-budget
//! timer instead of criterion's statistical machinery: each benchmark is
//! warmed up briefly, then timed for a capped number of iterations, and
//! the mean time per iteration is printed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Per-iteration measurement driver handed to benchmark closures.
pub struct Bencher {
    /// Mean wall-clock time per iteration measured by the last `iter` call.
    pub mean: Duration,
    /// Iterations actually timed.
    pub iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Times `f` repeatedly within the bencher's budget and records the
    /// mean per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (also primes caches/allocations).
        std::hint::black_box(f());
        // Check the clock only once per batch so nanosecond-scale bodies
        // are not dominated by `Instant::elapsed` overhead; the batch size
        // doubles until a batch is long enough to time meaningfully.
        let start = Instant::now();
        let mut iters: u64 = 0;
        let mut batch: u64 = 1;
        loop {
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            iters += batch;
            let elapsed = start.elapsed();
            if elapsed >= self.budget || iters >= 1_000_000 {
                break;
            }
            if elapsed < self.budget / 20 && batch < 65_536 {
                batch *= 2;
            }
        }
        self.iters = iters;
        self.mean = start.elapsed() / iters.max(1) as u32;
    }
}

/// Throughput annotation for a benchmark group (recorded, reported
/// alongside timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    budget: Option<Duration>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the vendored
    /// runner uses a time budget instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time budget for this group's benchmarks
    /// (scoped to the group, as in real criterion).
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = Some(budget);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<I: Into<String>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
            budget: self.budget.unwrap_or(self.criterion.budget),
        };
        f(&mut b);
        let per_iter = b.mean;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  ({:.3e} elem/s)", n as f64 / per_iter.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!("  ({:.3e} B/s)", n as f64 / per_iter.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<40} {:>12.3?} /iter over {} iters{}",
            self.name, id, per_iter, b.iters, rate
        );
        self
    }

    /// Ends the group (criterion-API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Applies command-line configuration. Name filters are ignored (as
    /// before), but `--test` — criterion's quick smoke mode, reached via
    /// `cargo bench -- --test` — is honoured: the measurement budget drops
    /// to zero so every benchmark body runs a couple of times and is
    /// reported without real timing. CI uses this to prove the benches
    /// still execute without paying for a measurement run.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.budget = Duration::ZERO;
        }
        self
    }

    /// Starts a named [`BenchmarkGroup`].
    pub fn benchmark_group<I: Into<String>>(&mut self, name: I) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            budget: None,
            criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<I: Into<String>, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Opaque black box re-exported for API compatibility.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("selftest");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum_100", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(selftest_group, sample_bench);

    #[test]
    fn group_runs_and_measures() {
        selftest_group();
    }

    #[test]
    fn zero_budget_smoke_mode_runs_once() {
        // The `--test` quick mode: a zero budget still executes the body
        // and terminates immediately after the first timed batch.
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
            budget: Duration::ZERO,
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert!(calls >= 1);
        assert!(b.iters <= 2, "smoke mode must not loop: {}", b.iters);
    }

    #[test]
    fn bencher_records_iters() {
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
            budget: Duration::from_millis(5),
        };
        b.iter(|| std::hint::black_box(2 + 2));
        assert!(b.iters > 0);
    }
}
