//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the vendored `serde`.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build
//! has no `syn`/`quote`). Supports exactly what the workspace derives on:
//! non-generic structs (unit, tuple/newtype, named-field) and enums whose
//! variants are unit, tuple, or struct-like — with no `#[serde(...)]`
//! attributes. Generated code follows real serde's JSON data model:
//! newtype structs serialize transparently, unit variants as strings,
//! data-carrying variants as `{"Variant": ...}` single-key maps.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` via the vendored `Value` data model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` via the vendored `Value` data model.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    UnitStruct {
        name: String,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = parse_item(input);
    let code = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Consumes leading `#[...]` attributes (including doc comments) and a
/// visibility qualifier from the token cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` / `pub(in ...)`.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported");
        }
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            None => Item::UnitStruct { name },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: split_top_level(g.stream()).len(),
                }
            }
            Some(other) => panic!("serde_derive: unexpected token after struct name: {other}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Splits a token stream at top-level commas, tracking angle-bracket depth
/// so `Vec<(usize, f64)>`-style type arguments stay in one chunk. Groups
/// are opaque tokens, so parens/brackets/braces are already atomic.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        chunks.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Extracts field names from a named-field body: for each comma-separated
/// chunk, the identifier immediately before the first top-level `:`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let i = skip_attrs_and_vis(&chunk, 0);
            match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected field name, got {other}"),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let i = skip_attrs_and_vis(&chunk, 0);
            let name = match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected variant name, got {other}"),
            };
            let kind = match chunk.get(i + 1) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                    panic!("serde_derive (vendored): explicit discriminants not supported")
                }
                Some(other) => panic!("serde_derive: unexpected token in variant: {other}"),
            };
            Variant { name, kind }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn map_entries(pairs: &[(String, String)]) -> String {
    let entries: Vec<String> = pairs
        .iter()
        .map(|(key, expr)| format!("({key:?}.to_string(), serde::Serialize::to_value({expr}))"))
        .collect();
    format!("serde::Value::Map(vec![{}])", entries.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::UnitStruct { name } => (name, "serde::Value::Null".to_string()),
        Item::TupleStruct { name, arity: 1 } => {
            (name, "serde::Serialize::to_value(&self.0)".to_string())
        }
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            (
                name,
                format!("serde::Value::Seq(vec![{}])", elems.join(", ")),
            )
        }
        Item::NamedStruct { name, fields } => {
            let pairs: Vec<(String, String)> = fields
                .iter()
                .map(|f| (f.clone(), format!("&self.{f}")))
                .collect();
            (name, map_entries(&pairs))
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => serde::Value::Str({vname:?}.to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => serde::Value::Map(vec![({vname:?}.to_string(), serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => serde::Value::Map(vec![({vname:?}.to_string(), serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let pairs: Vec<(String, String)> =
                                fields.iter().map(|f| (f.clone(), f.clone())).collect();
                            format!(
                                "{name}::{vname} {{ {} }} => serde::Value::Map(vec![({vname:?}.to_string(), {})]),",
                                fields.join(", "),
                                map_entries(&pairs)
                            )
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{ {body} }}\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::UnitStruct { name } => (name, format!("Ok({name})")),
        Item::TupleStruct { name, arity: 1 } => (
            name,
            format!("Ok({name}(serde::Deserialize::from_value(__v)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            (
                name,
                format!(
                    "let __items = __v.as_seq().ok_or_else(|| serde::Error::new(\"expected sequence for {name}\"))?;\n\
                     if __items.len() != {arity} {{ return Err(serde::Error::new(\"wrong tuple arity for {name}\")); }}\n\
                     Ok({name}({}))",
                    elems.join(", ")
                ),
            )
        }
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: serde::Deserialize::from_value(serde::field(__map, {f:?}))?")
                })
                .collect();
            (
                name,
                format!(
                    "let __map = __v.as_map().ok_or_else(|| serde::Error::new(\"expected map for {name}\"))?;\n\
                     Ok({name} {{ {} }})",
                    inits.join(", ")
                ),
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => return Ok({name}::{}),", v.name, v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vname:?} => return Ok({name}::{vname}(serde::Deserialize::from_value(__payload)?)),"
                        )),
                        VariantKind::Tuple(arity) => {
                            let elems: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                 let __items = __payload.as_seq().ok_or_else(|| serde::Error::new(\"expected sequence for {name}::{vname}\"))?;\n\
                                 if __items.len() != {arity} {{ return Err(serde::Error::new(\"wrong arity for {name}::{vname}\")); }}\n\
                                 return Ok({name}::{vname}({}));\n\
                                 }}",
                                elems.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::from_value(serde::field(__fields, {f:?}))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                 let __fields = __payload.as_map().ok_or_else(|| serde::Error::new(\"expected map for {name}::{vname}\"))?;\n\
                                 return Ok({name}::{vname} {{ {} }});\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            (
                name,
                format!(
                    "if let Some(__s) = __v.as_str() {{\n\
                         match __s {{ {} _ => return Err(serde::Error::new(format!(\"unknown {name} variant {{__s}}\"))), }}\n\
                     }}\n\
                     if let Some(__entries) = __v.as_map() {{\n\
                         if __entries.len() == 1 {{\n\
                             let (__tag, __payload) = &__entries[0];\n\
                             match __tag.as_str() {{ {} _ => return Err(serde::Error::new(format!(\"unknown {name} variant {{__tag}}\"))), }}\n\
                         }}\n\
                     }}\n\
                     Err(serde::Error::new(\"expected enum representation for {name}\"))",
                    unit_arms.join(" "),
                    data_arms.join(" ")
                ),
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n    fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n{body}\n    }}\n}}"
    )
}
