//! Vendored minimal stand-in for the `serde` crate.
//!
//! Instead of serde's visitor architecture, serialization goes through a
//! self-describing [`Value`] tree: `Serialize` renders a type into a
//! `Value`, `Deserialize` rebuilds it from one. The companion
//! `serde_derive` proc-macro generates both impls for plain structs and
//! enums (no `#[serde(...)]` attributes), and the vendored `serde_json`
//! prints/parses `Value` as JSON. The JSON shapes follow real serde's
//! conventions (newtype structs are transparent, unit enum variants are
//! strings, data-carrying variants are single-key maps), so swapping the
//! real crates back in produces the same documents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree — the interchange format between
/// `Serialize`, `Deserialize`, and the vendored `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders a value into the self-describing [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from the self-describing [`Value`] tree.
pub trait Deserialize: Sized {
    /// Converts a [`Value`] back into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a struct field in a map `Value`, treating a missing key as
/// `null` so `Option` fields tolerate omission (named in the generated
/// derive code).
pub fn field<'v>(entries: &'v [(String, Value)], name: &str) -> &'v Value {
    const NULL: Value = Value::Null;
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => {
                        return Err(Error::new(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| Error::new(format!("integer {n} too large")))?,
                    Value::F64(f) if f.fract() == 0.0 => f as i64,
                    ref other => {
                        return Err(Error::new(format!("expected integer, got {other:?}")))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            ref other => Err(Error::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_seq()
                    .ok_or_else(|| Error::new(format!("expected tuple sequence, got {v:?}")))?;
                let expected = [$($idx,)+].len();
                if items.len() != expected {
                    return Err(Error::new(format!(
                        "expected {expected}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn integers_accept_cross_signedness() {
        // I64 only holds negatives by construction, but a raw one with a
        // positive payload must still convert.
        assert_eq!(u64::from_value(&Value::I64(7)).unwrap(), 7);
        assert!(u64::from_value(&Value::I64(-7)).is_err());
        assert_eq!(i32::from_value(&Value::U64(9)).unwrap(), 9);
    }

    #[test]
    fn options_and_vecs() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let xs = vec![(1usize, 2.5f64), (3, 4.5)];
        let round: Vec<(usize, f64)> = Vec::from_value(&xs.to_value()).unwrap();
        assert_eq!(round, xs);
    }

    #[test]
    fn missing_field_reads_as_null() {
        let entries = vec![("a".to_string(), Value::U64(1))];
        assert_eq!(field(&entries, "a"), &Value::U64(1));
        assert_eq!(field(&entries, "b"), &Value::Null);
    }
}
