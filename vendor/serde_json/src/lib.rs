//! Vendored minimal stand-in for `serde_json`: prints and parses the
//! vendored serde's `Value` tree as real JSON (`to_string`,
//! `to_string_pretty`, `from_str`).
//!
//! Numbers print through Rust's shortest-round-trip float formatting, so
//! `serialize → parse` is value-exact for every finite `f64`; non-finite
//! floats serialize as `null` (matching real serde_json).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Parses a JSON document into a raw [`Value`].
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    parse_value(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = Value::Map(vec![
            ("id".to_string(), Value::Str("fig2".to_string())),
            (
                "points".to_string(),
                Value::Seq(vec![
                    Value::Seq(vec![Value::U64(1), Value::F64(1.0)]),
                    Value::Seq(vec![Value::U64(9), Value::F64(3.77)]),
                ]),
            ),
            ("neg".to_string(), Value::I64(-4)),
            ("ok".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
        ]);
        let json = to_string(&v).unwrap();
        let back = value_from_str(&json).unwrap();
        // 1.0 prints as "1", which re-parses as U64(1) — numerically equal,
        // structurally U64. Compare through f64-normalising both sides.
        let json2 = to_string(&back).unwrap();
        assert_eq!(json, json2);
    }

    #[test]
    fn float_precision_round_trips() {
        for &f in &[std::f64::consts::PI, 1e-300, 6.02e23, 0.1 + 0.2] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nwith \"quotes\" and \\ backslash \t ünïcode".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_is_parseable_and_indented() {
        let v = Value::Map(vec![(
            "series".to_string(),
            Value::Seq(vec![Value::U64(1), Value::U64(2)]),
        )]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        assert_eq!(value_from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(value_from_str("{unquoted: 1}").is_err());
        assert!(value_from_str("[1, 2,").is_err());
        assert!(value_from_str("12 34").is_err());
    }
}
