//! Vendored minimal stand-in for the `rand_distr` crate: the `Exp`,
//! `Normal` and `LogNormal` distributions this workspace's simulator uses,
//! implemented with exact inverse-transform / Box–Muller sampling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;

pub use rand::distributions::Distribution;

/// Error returned by distribution constructors given invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for ParamError {}

/// The exponential distribution `Exp(λ)`, mean `1/λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential distribution with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Exp, ParamError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ParamError("Exp: lambda must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform: -ln(1 - U) / λ with U uniform in [0, 1).
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.lambda
    }
}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; `std_dev` must be non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, ParamError> {
        if std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(ParamError("Normal: std_dev must be non-negative"))
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; the second variate is discarded for simplicity.
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        // Guard against ln(0).
        let r = (-2.0 * (1.0 - u1).ln()).sqrt();
        let z = r * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution over `exp(N(mu, sigma²))`;
    /// `sigma` must be non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, ParamError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(d: &impl Distribution<f64>, samples: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(12345);
        (0..samples).map(|_| d.sample(&mut rng)).sum::<f64>() / samples as f64
    }

    #[test]
    fn exp_mean_is_inverse_lambda() {
        let d = Exp::new(4.0).unwrap();
        assert!((mean_of(&d, 200_000) - 0.25).abs() < 0.005);
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = Normal::new(3.0, 2.0).unwrap();
        assert!((mean_of(&d, 200_000) - 3.0).abs() < 0.02);
    }

    #[test]
    fn lognormal_mean_matches_closed_form() {
        let d = LogNormal::new(0.5, 0.4).unwrap();
        let expected = (0.5f64 + 0.4f64 * 0.4 / 2.0).exp();
        let got = mean_of(&d, 200_000);
        assert!(
            (got - expected).abs() / expected < 0.02,
            "{got} vs {expected}"
        );
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, -0.1).is_err());
    }
}
