//! End-to-end tests of the `mlscale` CLI: happy paths keep printing the
//! paper's answers, and every malformed input fails loudly — non-zero
//! exit, message naming the offending flag — instead of silently falling
//! back to a default.

use std::process::{Command, Output};

fn mlscale(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mlscale"))
        .args(args)
        .output()
        .expect("failed to spawn mlscale")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn fig2_preset_reports_the_paper_optimum() {
    let out = mlscale(&["gd", "--preset", "fig2", "--max-n", "13"]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("optimal workers: 9"),
        "Fig 2 answer lost:\n{stdout}"
    );
}

#[test]
fn pod_preset_runs_hierarchical_comm() {
    let out = mlscale(&["gd", "--preset", "pod", "--max-n", "64"]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("optimal workers:"));
}

#[test]
fn hierarchical_comm_by_hand_needs_rack_size() {
    let out = mlscale(&[
        "gd",
        "--params",
        "12e6",
        "--cost-per-example",
        "72e6",
        "--batch",
        "60000",
        "--flops",
        "84.48e9",
        "--comm",
        "hier",
    ]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--rack-size"));
}

#[test]
fn hierarchical_comm_with_rack_flags_runs() {
    let out = mlscale(&[
        "gd",
        "--params",
        "12e6",
        "--cost-per-example",
        "72e6",
        "--batch",
        "60000",
        "--flops",
        "84.48e9",
        "--bandwidth",
        "10e9",
        "--latency",
        "5e-6",
        "--comm",
        "hier",
        "--rack-size",
        "16",
        "--uplink-bandwidth",
        "1e9",
        "--uplink-latency",
        "50e-6",
        "--max-n",
        "48",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
}

#[test]
fn unknown_comm_value_fails_loudly() {
    let out = mlscale(&[
        "gd",
        "--params",
        "1e6",
        "--cost-per-example",
        "6e6",
        "--batch",
        "100",
        "--flops",
        "1e9",
        "--comm",
        "mesh",
    ]);
    assert!(!out.status.success(), "unknown --comm must not fall back");
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert!(err.contains("--comm") && err.contains("mesh"), "got: {err}");
}

#[test]
fn unparsable_number_names_the_flag() {
    let out = mlscale(&["gd", "--preset", "fig2", "--max-n", "lots"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert!(
        err.contains("--max-n") && err.contains("lots"),
        "got: {err}"
    );
}

#[test]
fn fractional_worker_count_rejected_not_truncated() {
    let out = mlscale(&["gd", "--preset", "fig2", "--max-n", "13.7"]);
    assert!(
        !out.status.success(),
        "13.7 workers must not truncate to 13"
    );
    assert!(stderr_of(&out).contains("--max-n"));
}

#[test]
fn zero_divisor_flags_rejected_cleanly() {
    // Zero flop rates / bandwidths / workload sizes would panic deep in
    // the unit algebra; the CLI must refuse them up front, naming the flag.
    for (flag, args) in [
        (
            "--flops",
            vec![
                "gd",
                "--params",
                "1e6",
                "--cost-per-example",
                "6e6",
                "--batch",
                "100",
                "--flops",
                "0",
            ],
        ),
        (
            "--bandwidth",
            vec![
                "gd",
                "--params",
                "1e6",
                "--cost-per-example",
                "6e6",
                "--batch",
                "100",
                "--flops",
                "1e9",
                "--bandwidth",
                "0",
            ],
        ),
        (
            "--batch",
            vec![
                "gd",
                "--params",
                "1e6",
                "--cost-per-example",
                "6e6",
                "--batch",
                "0",
                "--flops",
                "1e9",
            ],
        ),
    ] {
        let out = mlscale(&args);
        assert!(!out.status.success(), "{flag} 0 must be rejected");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{flag} 0 must exit 2, not panic"
        );
        let err = stderr_of(&out);
        assert!(
            err.contains(flag) && err.contains("positive"),
            "{flag}: got {err}"
        );
    }
}

#[test]
fn unknown_flag_rejected() {
    let out = mlscale(&["gd", "--preset", "fig2", "--max-m", "13"]);
    assert!(!out.status.success(), "typo'd flag must not be ignored");
    assert!(stderr_of(&out).contains("--max-m"));
}

#[test]
fn preset_conflicts_with_model_flags() {
    let out = mlscale(&["gd", "--preset", "fig2", "--params", "1e6"]);
    assert!(!out.status.success(), "--params would be silently ignored");
    let err = stderr_of(&out);
    assert!(err.contains("--params") && err.contains("preset"));
}

#[test]
fn missing_value_and_duplicates_rejected() {
    let out = mlscale(&["gd", "--preset"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--preset"));
    let out = mlscale(&["gd", "--preset", "fig2", "--preset", "fig3"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("more than once"));
}

#[test]
fn plan_deadline_parse_failure_names_flag() {
    let out = mlscale(&["plan", "--preset", "fig2", "--deadline", "soon"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(
        err.contains("--deadline") && err.contains("soon"),
        "got: {err}"
    );
}

#[test]
fn plan_happy_path_reports_fastest_and_cheapest() {
    let out = mlscale(&[
        "plan",
        "--preset",
        "fig2",
        "--iterations",
        "100",
        "--price",
        "2.0",
        "--deadline",
        "7200",
        "--budget",
        "50",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fastest:") && stdout.contains("cheapest:"));
}

#[test]
fn unknown_command_fails() {
    let out = mlscale(&["train"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("train"));
}

#[test]
fn bp_negative_input_rejected() {
    let out = mlscale(&["bp", "--vertices", "-5", "--edges", "100"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--vertices"));
}

#[test]
fn straggler_scenario_reports_expected_curve() {
    let out = mlscale(&[
        "gd",
        "--preset",
        "fig2",
        "--max-n",
        "13",
        "--straggler",
        "exp:4",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("expected strong scaling under stragglers"),
        "must announce the stochastic regime:\n{stdout}"
    );
    assert!(stdout.contains("optimal workers:"));
}

#[test]
fn zero_jitter_scenario_keeps_the_paper_answer() {
    let out = mlscale(&[
        "gd",
        "--preset",
        "fig2",
        "--max-n",
        "13",
        "--straggler",
        "exp:0",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("optimal workers: 9"),
        "zero-mean tail must degenerate to the paper's optimum:\n{stdout}"
    );
}

#[test]
fn invalid_straggler_specs_fail_loudly() {
    for spec in [
        "bogus",
        "exp",
        "exp:lots",
        "exp:-1",
        "lognormal:0",
        "jitter:-2",
    ] {
        let out = mlscale(&["gd", "--preset", "fig2", "--straggler", spec]);
        assert!(!out.status.success(), "--straggler {spec} must be rejected");
        assert_eq!(out.status.code(), Some(2), "--straggler {spec} must exit 2");
        assert!(
            stderr_of(&out).contains("--straggler"),
            "--straggler {spec}: got {}",
            stderr_of(&out)
        );
    }
}

#[test]
fn invalid_backup_k_values_fail_loudly() {
    for bad in ["-1", "2.5", "many"] {
        let out = mlscale(&[
            "gd",
            "--preset",
            "fig2",
            "--straggler",
            "exp:1",
            "--backup-k",
            bad,
        ]);
        assert!(!out.status.success(), "--backup-k {bad} must be rejected");
        assert_eq!(out.status.code(), Some(2));
        assert!(stderr_of(&out).contains("--backup-k"));
    }
    // Dropping every worker is meaningless.
    let out = mlscale(&[
        "gd",
        "--preset",
        "fig2",
        "--straggler",
        "exp:1",
        "--max-n",
        "8",
        "--backup-k",
        "8",
    ]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("--backup-k"));
}

#[test]
fn backup_k_without_a_scenario_rejected() {
    let out = mlscale(&["gd", "--preset", "fig2", "--backup-k", "2"]);
    assert!(!out.status.success(), "a no-op --backup-k must be loud");
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("--backup-k"));
}

#[test]
fn duplicate_and_conflicting_straggler_flags_rejected() {
    // The same flag twice.
    let out = mlscale(&[
        "gd",
        "--preset",
        "fig2",
        "--straggler",
        "exp:1",
        "--straggler",
        "exp:2",
    ]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("more than once"));
    // Two ways of specifying the same distribution.
    let out = mlscale(&[
        "gd",
        "--preset",
        "fig2",
        "--straggler",
        "exp:1",
        "--jitter",
        "0.5",
    ]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert!(
        err.contains("--jitter") && err.contains("--straggler"),
        "got: {err}"
    );
}

#[test]
fn rack_heterogeneity_conflicts_with_flat_presets() {
    // fig2 is a flat cluster: rack-decay heterogeneity has nothing to
    // attach to and must not be silently ignored.
    let out = mlscale(&["gd", "--preset", "fig2", "--hetero", "rack:0.8"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert!(
        err.contains("--hetero") && err.contains("rack"),
        "got: {err}"
    );
    // On the racked pod preset the same flag is valid.
    let out = mlscale(&[
        "gd", "--preset", "pod", "--hetero", "rack:0.8", "--max-n", "48",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
}

#[test]
fn invalid_hetero_specs_fail_loudly() {
    for spec in ["bogus", "slow:2", "slow:x:0.5", "slow:2:0", "rack:-1"] {
        let out = mlscale(&["gd", "--preset", "pod", "--hetero", spec]);
        assert!(!out.status.success(), "--hetero {spec} must be rejected");
        assert_eq!(out.status.code(), Some(2), "--hetero {spec} must exit 2");
        assert!(stderr_of(&out).contains("--hetero"));
    }
}

#[test]
fn preset_model_flag_conflict_still_fires_with_straggler_flags() {
    let out = mlscale(&[
        "gd",
        "--preset",
        "fig2",
        "--straggler",
        "exp:1",
        "--params",
        "1e6",
    ]);
    assert!(!out.status.success(), "--params would be silently ignored");
    let err = stderr_of(&out);
    assert!(err.contains("--params") && err.contains("preset"));
}

#[test]
fn plan_with_stragglers_uses_expected_times() {
    let base = mlscale(&[
        "plan",
        "--preset",
        "fig2",
        "--iterations",
        "100",
        "--price",
        "2.0",
    ]);
    let straggled = mlscale(&[
        "plan",
        "--preset",
        "fig2",
        "--iterations",
        "100",
        "--price",
        "2.0",
        "--straggler",
        "exp:8",
    ]);
    assert!(base.status.success());
    assert!(
        straggled.status.success(),
        "stderr: {}",
        stderr_of(&straggled)
    );
    let out = String::from_utf8_lossy(&straggled.stdout).into_owned();
    assert!(
        out.contains("expected"),
        "must announce expected-time planning"
    );
    // Expected fastest time under an 8 s tail must exceed the deterministic one.
    let fastest_secs = |s: &str| -> f64 {
        let line = s.lines().find(|l| l.starts_with("fastest:")).unwrap();
        let time = line.split("time").nth(1).unwrap();
        time.split_whitespace().next().unwrap().parse().unwrap()
    };
    let det = fastest_secs(&String::from_utf8_lossy(&base.stdout));
    let tail = fastest_secs(&out);
    assert!(
        tail > det,
        "expected planning must price the tail in: {tail} vs {det}"
    );
}

// ---------------------------------------------------------------------------
// Scenario specs and the sweep verb
// ---------------------------------------------------------------------------

/// Writes a scenario document to a unique temp file and returns its path.
fn temp_scenario(tag: &str, json: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "mlscale-cli-test-{}-{tag}.json",
        std::process::id()
    ));
    std::fs::write(&path, json).expect("write scenario");
    path
}

/// Runs a scenario expecting exit status 2 and an error naming `key`.
fn assert_rejected(tag: &str, json: &str, key: &str) {
    let path = temp_scenario(tag, json);
    for verb in [vec!["sweep"], vec!["scenario", "validate"]] {
        let mut args: Vec<&str> = verb.clone();
        let path_str = path.to_str().unwrap();
        args.push(path_str);
        let out = mlscale(&args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{tag}: `mlscale {}` must exit 2",
            verb.join(" ")
        );
        let stderr = stderr_of(&out);
        assert!(
            stderr.contains(key),
            "{tag}: error must name {key:?}, got:\n{stderr}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_runs_the_checked_in_latency_grid() {
    let out_dir = std::env::temp_dir().join(format!("mlscale-cli-sweep-{}", std::process::id()));
    let out = mlscale(&[
        "sweep",
        "scenarios/latency-grid.json",
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("24 grid point(s)"), "{stdout}");
    assert!(stdout.contains("wrote 25 results file(s)"), "{stdout}");
    // One results JSON per grid point plus the roll-up, all valid JSON,
    // plus the sweep journal backing `--resume`.
    let mut files: Vec<_> = std::fs::read_dir(&out_dir)
        .expect("out dir created")
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    assert_eq!(files.len(), 26);
    for file in files
        .iter()
        .filter(|f| f.extension().is_some_and(|e| e == "json"))
    {
        let json = std::fs::read_to_string(file).unwrap();
        assert!(json.starts_with('{'), "{}: not JSON", file.display());
    }
    assert!(files[24].ends_with("latency-grid-rollup.json"));
    assert!(files[25].ends_with("latency-grid.manifest"));
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn one_point_sweep_agrees_with_the_gd_verb() {
    let path = temp_scenario(
        "parity",
        r#"{"name": "parity", "workload": {"kind": "gd", "preset": "fig2", "max_n": 13}}"#,
    );
    let out_dir = std::env::temp_dir().join(format!("mlscale-cli-parity-{}", std::process::id()));
    let sweep = mlscale(&[
        "sweep",
        path.to_str().unwrap(),
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    assert!(sweep.status.success(), "stderr: {}", stderr_of(&sweep));
    let gd = mlscale(&["gd", "--preset", "fig2", "--max-n", "13"]);
    assert!(gd.status.success());
    // Both views of the same configuration report the paper's optimum.
    assert!(
        String::from_utf8_lossy(&gd.stdout).contains("optimal workers: 9"),
        "gd verb lost the Fig 2 answer"
    );
    let point_json =
        std::fs::read_to_string(out_dir.join("parity-p000.json")).expect("point result");
    let point: mlscale::workloads::ExperimentResult =
        serde_json::from_str(&point_json).expect("point result parses");
    let n_opt = point
        .stats
        .iter()
        .find(|s| s.label == "optimal n")
        .expect("optimal n stat")
        .value;
    assert_eq!(n_opt, 9.0, "sweep point must report the same optimum");
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn scenario_explain_prints_the_grid() {
    let out = mlscale(&[
        "scenario",
        "explain",
        "scenarios/straggler-mitigation-grid.json",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("grid: 12 point(s)"), "{stdout}");
    assert!(stdout.contains("comm=spark, backup_k=0"), "{stdout}");
    assert!(
        stdout.contains("straggler-mitigation-grid-p011"),
        "{stdout}"
    );
}

#[test]
fn sweep_rejects_unknown_field_naming_its_path() {
    assert_rejected(
        "unknown-field",
        r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2", "latancy": 1.0}}"#,
        "workload.latancy",
    );
}

#[test]
fn sweep_rejects_negative_n_naming_the_key() {
    assert_rejected(
        "negative-n",
        r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2", "max_n": -3}}"#,
        "workload.max_n",
    );
}

#[test]
fn sweep_rejects_empty_grid_axis() {
    assert_rejected(
        "empty-axis",
        r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2"},
            "sweep": [{"param": "jitter", "values": []}]}"#,
        "sweep[0].values",
    );
}

#[test]
fn sweep_rejects_conflicting_preset_and_rack_flags() {
    assert_rejected(
        "preset-rack-conflict",
        r#"{"name": "t", "workload": {"kind": "gd", "preset": "pod", "rack_size": 8}}"#,
        "workload.rack_size",
    );
}

#[test]
fn sweep_rejects_bad_axis_value_naming_the_grid_point() {
    assert_rejected(
        "bad-axis-value",
        r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2"},
            "sweep": [{"param": "comm", "values": ["tree", "warp"]}]}"#,
        "grid point t-p001",
    );
}

#[test]
fn sweep_rejects_exhibit_with_sweep() {
    assert_rejected(
        "exhibit-sweep",
        r#"{"name": "t", "workload": {"kind": "exhibit", "id": "fig1"},
            "sweep": [{"param": "max_n", "values": [8]}]}"#,
        "sweep",
    );
}

#[test]
fn sweep_rejects_invalid_json_syntax() {
    assert_rejected("syntax", r#"{"name": "t", "workload": }"#, "invalid JSON");
}

#[test]
fn sweep_rejects_missing_file_with_exit_2() {
    let out = mlscale(&["sweep", "/nonexistent/scenario.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("cannot read scenario"));
}

#[test]
fn sweep_rejects_unknown_flags() {
    let out = mlscale(&["sweep", "scenarios/fig1.json", "--bogus", "1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("--bogus"));
}

#[test]
fn scenario_needs_a_known_subcommand() {
    let out = mlscale(&["scenario", "frobnicate", "scenarios/fig1.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("frobnicate"));
}

#[test]
fn gd_rejects_extreme_max_n_without_log_points() {
    let out = mlscale(&["gd", "--preset", "fig2", "--max-n", "1000000000"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("--max-n"), "{stderr}");
    assert!(stderr.contains("dense-mode limit"), "{stderr}");
    assert!(stderr.contains("--log-points"), "{stderr}");
}

#[test]
fn plan_rejects_extreme_max_n_without_log_points() {
    let out = mlscale(&["plan", "--preset", "fig2", "--max-n", "1000000000"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("dense-mode limit"));
}

#[test]
fn bp_rejects_extreme_max_n() {
    let out = mlscale(&[
        "bp",
        "--vertices",
        "1000",
        "--edges",
        "5000",
        "--max-n",
        "100000",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("dense-mode limit"));
}

#[test]
fn gd_rejects_degenerate_log_points() {
    let out = mlscale(&[
        "gd",
        "--preset",
        "fig2",
        "--max-n",
        "64",
        "--log-points",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("--log-points"));
}

#[test]
fn gd_runs_a_million_workers_on_a_log_ladder() {
    let out = mlscale(&[
        "gd",
        "--preset",
        "fig2",
        "--max-n",
        "1000000",
        "--log-points",
        "40",
        "--straggler",
        "exp:0.05",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("log ladder to 1000000"), "{stdout}");
    assert!(stdout.contains("1000000"), "{stdout}");
    assert!(stdout.contains("optimal workers:"), "{stdout}");
}

#[test]
fn plan_runs_a_million_workers_on_a_log_ladder() {
    let out = mlscale(&[
        "plan",
        "--preset",
        "fig2",
        "--max-n",
        "1000000",
        "--log-points",
        "60",
        "--iterations",
        "100",
        "--price",
        "2.0",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fastest:"), "{stdout}");
    assert!(stdout.contains("cheapest:"), "{stdout}");
}

#[test]
fn sweep_rejects_extreme_max_n_without_log_points() {
    assert_rejected(
        "extreme-max-n",
        r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2", "max_n": 1000000000}}"#,
        "workload.max_n",
    );
}

// ---------------------------------------------------------------------------
// Streaming, sharded, and adaptive sweeps
// ---------------------------------------------------------------------------

/// Extracts the machine-readable `summary {...}` JSON from sweep stdout.
fn summary_line(stdout: &str) -> String {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("summary "))
        .expect("every sweep must close with a `summary {...}` line")
        .to_owned()
}

#[test]
fn validate_refuses_over_cap_grids_before_expansion() {
    // 1001 × 1001 = 1_002_001 points — just past MAX_GRID_POINTS. The
    // refusal must name the expanded count and come from the checked
    // axis-length product, not from materialising a million points.
    let path = temp_scenario(
        "over-cap",
        r#"{"name": "over-cap",
            "workload": {"kind": "gd", "params": 12e6, "cost_per_example": 72e6,
                         "batch": 60000, "flops": 84.48e9, "max_n": 8},
            "sweep": [
              {"param": "latency", "range": {"from": 0.0, "to": 1e-3, "step": 1e-6}},
              {"param": "bandwidth", "range": {"from": 1e9, "to": 2e9, "step": 1e6}}
            ]}"#,
    );
    let started = std::time::Instant::now();
    for verb in [vec!["scenario", "validate"], vec!["sweep"]] {
        let mut args = verb.clone();
        let path_str = path.to_str().unwrap();
        args.push(path_str);
        let out = mlscale(&args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "`mlscale {}` must refuse the over-cap grid",
            verb.join(" ")
        );
        let err = stderr_of(&out);
        assert!(
            err.contains("1002001") && err.contains("limit 1000000"),
            "refusal must report the expanded point count and the cap, got:\n{err}"
        );
    }
    // Counting axis lengths is arithmetic; expanding 1M points is not.
    assert!(
        started.elapsed() < std::time::Duration::from_secs(20),
        "over-cap refusal took {:?} — the grid is being expanded",
        started.elapsed()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn sharded_sweep_matches_the_per_point_rollup_and_reports_a_summary() {
    let base = std::env::temp_dir().join(format!("mlscale-cli-shard-{}", std::process::id()));
    let per_point_dir = base.join("per-point");
    let sharded_dir = base.join("sharded");
    std::fs::remove_dir_all(&base).ok();
    let per_point = mlscale(&[
        "sweep",
        "scenarios/latency-grid.json",
        "--out",
        per_point_dir.to_str().unwrap(),
    ]);
    assert!(
        per_point.status.success(),
        "stderr: {}",
        stderr_of(&per_point)
    );
    // Forcing --per-point-max below the 24-point grid flips the run into
    // the sharded store: ceil(24 / 10) = 3 NDJSON shards.
    let sharded = mlscale(&[
        "sweep",
        "scenarios/latency-grid.json",
        "--out",
        sharded_dir.to_str().unwrap(),
        "--per-point-max",
        "10",
    ]);
    assert!(sharded.status.success(), "stderr: {}", stderr_of(&sharded));
    let stdout = String::from_utf8_lossy(&sharded.stdout);
    assert!(
        stdout.contains("sharded store: 3 shard(s) of up to 10 record(s) each"),
        "{stdout}"
    );
    let summary = summary_line(&stdout);
    for key in [
        r#""mode":"sharded""#,
        r#""grid_points":24"#,
        r#""evaluated":24"#,
        r#""shards":3"#,
    ] {
        assert!(summary.contains(key), "summary missing {key}: {summary}");
    }
    // Both layouts distil the same sweep, byte for byte.
    let rollup_a =
        std::fs::read(per_point_dir.join("latency-grid-rollup.json")).expect("per-point roll-up");
    let rollup_b =
        std::fs::read(sharded_dir.join("latency-grid-rollup.json")).expect("sharded roll-up");
    assert_eq!(rollup_a, rollup_b, "roll-ups must be byte-identical");
    // Shards + roll-up + journal, and no per-point files.
    let mut files: Vec<String> = std::fs::read_dir(&sharded_dir)
        .expect("sharded out dir")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    files.sort();
    assert_eq!(
        files,
        vec![
            "latency-grid-rollup.json",
            "latency-grid-shard-0000.ndjson",
            "latency-grid-shard-0001.ndjson",
            "latency-grid-shard-0002.ndjson",
            "latency-grid.manifest",
        ],
        "unexpected sharded layout"
    );
    // A completed sharded sweep resumes entirely from its journal.
    let resumed = mlscale(&[
        "sweep",
        "scenarios/latency-grid.json",
        "--out",
        sharded_dir.to_str().unwrap(),
        "--per-point-max",
        "10",
        "--resume",
    ]);
    assert!(resumed.status.success(), "stderr: {}", stderr_of(&resumed));
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(
        stdout.contains("resumed: 24 of 24 point(s) restored from the journal"),
        "{stdout}"
    );
    assert!(
        summary_line(&stdout).contains(r#""resumed":24"#),
        "{stdout}"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn adaptive_sweep_reports_the_frontier_and_a_summary() {
    let out_dir = std::env::temp_dir().join(format!("mlscale-cli-adaptive-{}", std::process::id()));
    std::fs::remove_dir_all(&out_dir).ok();
    let out = mlscale(&[
        "sweep",
        "scenarios/latency-grid.json",
        "--adaptive",
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("adaptive: evaluated"), "{stdout}");
    assert!(stdout.contains("frontier:"), "{stdout}");
    let summary = summary_line(&stdout);
    assert!(
        summary.contains(r#""mode":"adaptive""#) && summary.contains(r#""frontier":[["#),
        "summary must carry the machine-readable frontier: {summary}"
    );
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn adaptive_sweep_refuses_resume() {
    let out = mlscale(&[
        "sweep",
        "scenarios/latency-grid.json",
        "--adaptive",
        "--resume",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert!(
        err.contains("--resume") && err.contains("--adaptive"),
        "got: {err}"
    );
}

#[test]
fn adaptive_refuses_scenarios_with_no_grid() {
    let out = mlscale(&["sweep", "scenarios/fig2.json", "--adaptive"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert!(
        err.contains("--adaptive") && err.contains("non-empty sweep"),
        "got: {err}"
    );
}

#[test]
fn per_point_max_zero_rejected() {
    let out = mlscale(&[
        "sweep",
        "scenarios/latency-grid.json",
        "--per-point-max",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("--per-point-max"));
}

#[test]
fn one_point_log_sweep_runs() {
    let dir = std::env::temp_dir().join("mlscale-cli-log-sweep");
    std::fs::remove_dir_all(&dir).ok();
    let path = temp_scenario(
        "log-sweep",
        r#"{"name": "log-sweep",
            "workload": {"kind": "gd", "preset": "fig2", "max_n": 1000000,
                         "log_points": 40, "straggler": {"kind": "exp", "mean": 0.05}}}"#,
    );
    let out = mlscale(&[
        "sweep",
        path.to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote 2 results file(s)"), "{stdout}");
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(&dir).ok();
}
