//! Property suite for the extreme-scale order-statistic regime: the
//! asymptotic tail must agree with the exact shared-grid path at the
//! crossover (relative error ≤ 1e-3, in practice orders of magnitude
//! tighter), expected order statistics must stay monotone in n up to
//! 10⁶, drop-k must never hurt at large n, and the log-spaced
//! curve/planner constructions must answer million-worker questions
//! from O(hundreds) of model calls.

use mlscale::model::planner::Pricing;
use mlscale::model::speedup::log_spaced_ns;
use mlscale::model::straggler::{StragglerGdModel, StragglerModel};
use mlscale::workloads::experiments::figures::fig2_model;
use proptest::prelude::*;

/// The acceptance bound on asymptotic-vs-exact relative error at the
/// crossover n (the measured error is below 1e-12 for both tails).
const CROSSOVER_REL_ERR: f64 = 1e-3;

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-300)
}

/// Every stochastic variant family, parameterised by the proptest draws.
fn variants(mean: f64, mu: f64, sigma: f64, spread: f64) -> Vec<StragglerModel> {
    vec![
        StragglerModel::Deterministic,
        StragglerModel::BoundedJitter { spread },
        StragglerModel::ExponentialTail { mean },
        StragglerModel::LogNormalTail { mu, sigma },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At the crossover n the asymptotic regime agrees with the exact
    /// shared-grid/harmonic path within the stated bound, for every
    /// variant that has a crossover, across random tail parameters and
    /// drop-k values. Variants without a crossover (deterministic,
    /// bounded jitter) stay exact at any n.
    #[test]
    fn asymptotic_matches_exact_at_the_crossover(
        mean in 0.01f64..10.0,
        mu in -3.0f64..2.0,
        sigma in 0.1f64..1.5,
        spread in 0.01f64..5.0,
        k in 0usize..8,
    ) {
        for model in variants(mean, mu, sigma, spread) {
            match model.asymptotic_crossover() {
                Some(cross) => {
                    // Just above the crossover the routed value is the
                    // asymptotic one; the exact path is still available.
                    for n in [cross + 1, cross + 7] {
                        let routed = model.expected_order_stat(n, k);
                        let exact = model.expected_order_stat_exact(n, k);
                        prop_assert!(routed.is_finite(), "{model:?} n={n} k={k}: {routed}");
                        prop_assert!(
                            rel_err(routed, exact) <= CROSSOVER_REL_ERR,
                            "{model:?} n={n} k={k}: asymptotic {routed} vs exact {exact} \
                             (rel {})",
                            rel_err(routed, exact)
                        );
                    }
                    // Just below, routing IS the exact path (bit-identical).
                    let below = model.expected_order_stat(cross, k);
                    let exact = model.expected_order_stat_exact(cross, k);
                    prop_assert!(below.to_bits() == exact.to_bits(),
                        "{model:?}: sub-crossover path must be bit-identical");
                }
                None => {
                    let n = 1_000_000;
                    let routed = model.expected_order_stat(n, k);
                    let exact = model.expected_order_stat_exact(n, k);
                    prop_assert!(routed.to_bits() == exact.to_bits(),
                        "{model:?}: exact-form variant diverged at n={n}");
                }
            }
        }
    }

    /// E[(n−k)-th order statistic] is nondecreasing in n along a log
    /// ladder to 10⁶ — including across the exact→asymptotic seam — for
    /// every variant.
    #[test]
    fn order_stats_are_monotone_in_n_to_a_million(
        mean in 0.01f64..10.0,
        mu in -3.0f64..2.0,
        sigma in 0.1f64..1.5,
        spread in 0.01f64..5.0,
        k in 0usize..4,
    ) {
        for model in variants(mean, mu, sigma, spread) {
            let mut prev = f64::NEG_INFINITY;
            for n in log_spaced_ns(1_000_000, 60) {
                if n <= k {
                    continue; // need at least k+1 workers to drop k
                }
                let v = model.expected_order_stat(n, k);
                prop_assert!(v.is_finite(), "{model:?} n={n} k={k}: {v}");
                prop_assert!(
                    v >= prev - prev.abs() * 1e-9,
                    "{model:?}: E[os] fell from {prev} (at the previous rung) to {v} at n={n}"
                );
                prev = v;
            }
        }
    }

    /// Dropping one more straggler never increases the expected barrier
    /// time at large n: E[(n−k−1)-th] ≤ E[(n−k)-th].
    #[test]
    fn drop_k_never_hurts_at_large_n(
        mean in 0.01f64..10.0,
        mu in -3.0f64..2.0,
        sigma in 0.1f64..1.5,
        spread in 0.01f64..5.0,
    ) {
        for model in variants(mean, mu, sigma, spread) {
            for n in [100_000usize, 1_000_000] {
                let mut prev = model.expected_order_stat(n, 0);
                for k in 1..6 {
                    let v = model.expected_order_stat(n, k);
                    prop_assert!(
                        v <= prev + prev.abs() * 1e-9,
                        "{model:?} n={n}: dropping k={k} raised E[os] {prev} -> {v}"
                    );
                    prev = v;
                }
            }
        }
    }

    /// The log-normal path stays finite at n = 10⁵ for any k, including
    /// mid-range k where the old multiplicative `m·C(n, k)` coefficient
    /// overflowed f64 (satellite regression for the log-space coefficient).
    #[test]
    fn lognormal_is_finite_at_1e5_for_any_k(
        mu in -3.0f64..2.0,
        sigma in 0.1f64..1.5,
        k in 0usize..60_000,
    ) {
        let model = StragglerModel::LogNormalTail { mu, sigma };
        let v = model.expected_order_stat(100_000, k);
        prop_assert!(v.is_finite(), "n=1e5 k={k}: {v}");
        prop_assert!(v >= 0.0, "n=1e5 k={k}: {v}");
    }

    /// The sparse batch evaluator agrees with per-call evaluation on an
    /// arbitrary ladder spanning the crossover.
    #[test]
    fn sparse_batch_matches_per_call(
        mean in 0.01f64..10.0,
        mu in -3.0f64..2.0,
        sigma in 0.1f64..1.5,
        k in 0usize..4,
    ) {
        let ns = log_spaced_ns(1_000_000, 25);
        for model in [
            StragglerModel::ExponentialTail { mean },
            StragglerModel::LogNormalTail { mu, sigma },
        ] {
            let batch = model.expected_order_stats_sparse(&ns, k);
            prop_assert_eq!(batch.len(), ns.len());
            for (&n, &b) in ns.iter().zip(&batch) {
                let per_call = model.expected_order_stat(n, k.min(n - 1));
                prop_assert!(
                    rel_err(b, per_call) <= 1e-12,
                    "{model:?} n={n}: batch {b} vs per-call {per_call}"
                );
            }
        }
    }
}

/// The Fig 2 strong-scaling job under a straggler tail, dropping the
/// single slowest worker per step.
fn test_model(model: StragglerModel) -> StragglerGdModel {
    StragglerGdModel {
        straggler: model,
        backup_k: 1,
        ..StragglerGdModel::deterministic(fig2_model())
    }
}

/// A million-worker strong curve and all four planner verbs complete —
/// the wall-time acceptance (< 5 s) is enforced by the CI scale-smoke
/// timeout around this test binary.
#[test]
fn million_worker_curve_and_planner_answer() {
    for model in [
        StragglerModel::ExponentialTail { mean: 0.05 },
        StragglerModel::LogNormalTail {
            mu: -2.0,
            sigma: 0.8,
        },
    ] {
        let m = test_model(model);
        let curve = m.strong_curve_log(1_000_000, 200);
        let (n_opt, s_opt) = curve.optimal();
        assert!(
            n_opt >= 1 && s_opt >= 1.0,
            "{model:?}: optimum {n_opt} / {s_opt}"
        );

        let planner = m.planner_log(100.0, 1_000_000, Pricing::hourly(2.0), 200);
        let fastest = planner.fastest();
        let cheapest = planner.cheapest();
        assert!(fastest.time.as_secs() <= cheapest.time.as_secs() * (1.0 + 1e-12));
        assert!(cheapest.cost <= fastest.cost * (1.0 + 1e-12));
        let deadline = mlscale::model::units::Seconds::new(fastest.time.as_secs() * 2.0);
        assert!(planner.cheapest_within_deadline(deadline).is_some());
        assert!(planner.fastest_within_budget(fastest.cost * 2.0).is_some());
    }
}
