//! Integration tests running every paper-exhibit reproduction end to end
//! (at CI-friendly scales) and asserting the paper's headline claims:
//! Table I magnitudes, the Fig 1 optimum at 14, the Fig 2 optimum at 9
//! with an in-band MAPE, Fig 3's close match and monotone weak scaling,
//! and Fig 4's conservative-then-overhead-dominated shape.

use mlscale::workloads::experiments::{ablations, fig1, fig2, fig3, fig4, table1, DnsScale};
use mlscale::workloads::ExperimentResult;

fn stat(result: &ExperimentResult, label: &str) -> f64 {
    result
        .stats
        .iter()
        .find(|s| s.label == label)
        .unwrap_or_else(|| panic!("stat {label:?} missing from {}", result.id))
        .value
}

#[test]
fn table1_reproduces_both_rows() {
    let r = table1();
    assert_eq!(stat(&r, "FC (MNIST) parameters"), 11_972_510.0);
    let fc_comp = stat(&r, "FC (MNIST) computations (2 ops/weight)");
    assert!((fc_comp - 24e6).abs() / 24e6 < 0.01);
    let inc_params = stat(&r, "Inception v3 parameters");
    assert!((22e6..26e6).contains(&inc_params));
    let inc_madds = stat(&r, "Inception v3 computations (madds)");
    assert!((4.5e9..6.5e9).contains(&inc_madds));
}

#[test]
fn fig1_example_peaks_at_fourteen() {
    let r = fig1();
    assert_eq!(stat(&r, "optimal n"), 14.0);
    // Speedup at the peak must beat any extreme of the sampled range.
    let speedup = r.series("speedup").expect("series");
    let peak = speedup.at(14).unwrap();
    assert!(peak > speedup.at(1).unwrap());
    assert!(peak > speedup.at(32).unwrap());
}

#[test]
fn fig2_optimum_and_mape_in_band() {
    let r = fig2(13);
    assert_eq!(
        stat(&r, "optimal n (model, n<=13)"),
        9.0,
        "paper: nine workers"
    );
    let mape = stat(&r, "MAPE %");
    assert!(
        mape < 30.0,
        "model-vs-simulated MAPE {mape:.1}% out of the paper's error band"
    );
    // Both curves show genuine speedup.
    assert!(stat(&r, "peak speedup (model)") > 3.0);
    assert!(stat(&r, "peak speedup (simulated)") > 3.0);
}

#[test]
fn fig3_weak_scaling_close_match() {
    let r = fig3();
    let mape = stat(&r, "MAPE %");
    assert!(mape < 8.0, "Fig 3 regime is a close match; got {mape:.1}%");
    let model = r.series("model").expect("series");
    // Rebased at 50 and monotone.
    assert!((model.at(50).unwrap() - 1.0).abs() < 1e-9);
    let values: Vec<f64> = model.points.iter().map(|&(_, v)| v).collect();
    assert!(values.windows(2).all(|w| w[1] > w[0]));
    // Doubling 50 → 100 buys well over 1.5x per-instance speedup.
    assert!(model.at(100).unwrap() > 1.5);
}

#[test]
fn fig4_tiny_shape_and_band() {
    let ns = [1usize, 2, 4, 8, 16, 32, 64, 80];
    let r = fig4(DnsScale::Tiny, &ns);
    let mape = stat(&r, "MAPE %");
    // The paper's own model error is 19.6–26 % across scales; accept a
    // comparable band for the simulated reproduction.
    assert!(mape < 40.0, "MAPE {mape:.1}% far out of band");
    let model = r.series("model").expect("model series");
    let sim = r.series("simulated").expect("sim series");
    // Both scale well initially.
    assert!(model.at(8).unwrap() > 3.0);
    assert!(sim.at(8).unwrap() > 3.0);
    // The model keeps rising while the simulated run is overhead-capped:
    // at the largest n the model exceeds the simulation.
    assert!(model.at(80).unwrap() > sim.at(80).unwrap());
    // And the simulated curve flattens: its 80-worker point is no better
    // than 1.2x its 32-worker point.
    assert!(sim.at(80).unwrap() < 1.2 * sim.at(32).unwrap());
}

#[test]
fn fig4_larger_graph_scales_further() {
    // The overhead crossover moves outward with graph size — the reason
    // the paper's 16M-vertex run still scaled at 80 cores while the small
    // graphs bent much earlier.
    let ns = [1usize, 4, 16, 48, 80];
    let tiny = fig4(DnsScale::Tiny, &ns);
    let small = fig4(DnsScale::Small, &ns);
    let s_tiny = tiny.series("simulated").unwrap().at(80).unwrap();
    let s_small = small.series("simulated").unwrap().at(80).unwrap();
    assert!(
        s_small > s_tiny,
        "10x more edges must push the overhead crossover outward: {s_small} vs {s_tiny}"
    );
}

#[test]
fn ablation_results_serialise() {
    let r = ablations::comm_architectures(16);
    let json = serde_json::to_string(&r).expect("serialise");
    let back: ExperimentResult = serde_json::from_str(&json).expect("deserialise");
    // serde_json round-trips floats to within one ULP of the shortest
    // representation, so compare structurally with a tolerance.
    assert_eq!(r.id, back.id);
    assert_eq!(r.title, back.title);
    assert_eq!(r.notes, back.notes);
    assert_eq!(r.series.len(), back.series.len());
    for (a, b) in r.series.iter().zip(&back.series) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.points.len(), b.points.len());
        for (&(n1, v1), &(n2, v2)) in a.points.iter().zip(&b.points) {
            assert_eq!(n1, n2);
            assert!((v1 - v2).abs() <= 1e-12 * v1.abs().max(1.0));
        }
    }
    for (a, b) in r.stats.iter().zip(&back.stats) {
        assert_eq!(a.label, b.label);
        assert!((a.value - b.value).abs() <= 1e-12 * a.value.abs().max(1.0));
    }
}
