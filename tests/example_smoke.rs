//! Smoke tests executing every `examples/*.rs` binary end to end.
//!
//! `cargo test` builds all example targets before running integration
//! tests, so the compiled binaries are guaranteed to sit in
//! `target/<profile>/examples/` next to this test's own binary. Each test
//! runs one example and asserts it exits cleanly with non-empty output —
//! catching panics, infinite loops (via the harness timeout culture), and
//! silent regressions in the demo entry points the README advertises.

use std::path::PathBuf;
use std::process::Command;

fn example_bin(name: &str) -> PathBuf {
    // current_exe = target/<profile>/deps/example_smoke-<hash>
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // deps/
    path.pop(); // <profile>/
    path.push("examples");
    path.push(format!("{name}{}", std::env::consts::EXE_SUFFIX));
    path
}

fn run_example(name: &str) -> String {
    let bin = example_bin(name);
    assert!(
        bin.exists(),
        "example binary {} not built (cargo test builds examples; was the \
         example renamed?)",
        bin.display()
    );
    let output = Command::new(&bin)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", bin.display()));
    assert!(
        output.status.success(),
        "example `{name}` exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    assert!(
        !stdout.trim().is_empty(),
        "example `{name}` printed nothing on stdout"
    );
    stdout
}

#[test]
fn quickstart_runs_and_reports_an_optimum() {
    let out = run_example("quickstart");
    assert!(
        out.contains("optimal cluster size"),
        "quickstart output lost its optimum line:\n{out}"
    );
}

#[test]
fn spark_mnist_runs() {
    run_example("spark_mnist");
}

#[test]
fn gpu_weak_scaling_runs() {
    run_example("gpu_weak_scaling");
}

#[test]
fn bp_dns_runs() {
    run_example("bp_dns");
}

#[test]
fn capacity_planning_runs() {
    run_example("capacity_planning");
}

#[test]
fn async_sgd_runs() {
    run_example("async_sgd");
}
