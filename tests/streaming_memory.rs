//! The load-bearing claim of the sharded store: a sweep five hundred
//! times the per-point default streams through shard-sized buffers — it
//! never accumulates the whole grid's records in memory. Runs in its own
//! test binary because the buffer telemetry is process-wide.

use mlscale::scenario::{
    peak_buffered_records, reset_buffer_telemetry, run_sharded, ScenarioSpec, DEFAULT_PER_POINT_MAX,
};

/// 500 × 200 = 100_000 grid points over a deliberately tiny workload
/// (`max_n 4` keeps each evaluation microseconds-cheap — the test is
/// about the store, not the model).
const BIG_GRID: &str = r#"{
  "name": "streaming",
  "workload": {"kind": "gd", "params": 12e6, "cost_per_example": 72e6,
               "batch": 60000, "bits": 64, "flops": 84.48e9,
               "bandwidth": 1e9, "max_n": 4},
  "sweep": [
    {"param": "latency", "range": {"from": 0.0, "to": 4.99e-4, "step": 1e-6}},
    {"param": "bandwidth", "range": {"from": 1e9, "to": 200e9, "step": 1e9}}
  ]
}"#;

#[test]
fn hundred_thousand_point_sweep_buffers_at_most_one_shard() {
    let spec = ScenarioSpec::from_json(BIG_GRID).expect("valid scenario");
    assert_eq!(spec.grid_len().expect("grid length"), 100_000);
    let dir = std::env::temp_dir().join(format!("mlscale-streaming-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    reset_buffer_telemetry();
    let sharded = run_sharded(&spec, &dir, false, DEFAULT_PER_POINT_MAX).expect("sharded sweep");
    assert_eq!(
        sharded.shards,
        100_000usize.div_ceil(DEFAULT_PER_POINT_MAX),
        "unexpected shard count"
    );
    let peak = peak_buffered_records();
    assert!(
        peak > 0 && peak <= DEFAULT_PER_POINT_MAX,
        "the store must hold at most one shard of records in memory, \
         but peaked at {peak} (shard size {DEFAULT_PER_POINT_MAX})"
    );
    // The roll-up still distils the full grid.
    let grid_points = sharded
        .rollup
        .stats
        .iter()
        .find(|s| s.label == "grid points")
        .expect("grid points stat")
        .value;
    assert_eq!(grid_points, 100_000.0);
    std::fs::remove_dir_all(&dir).ok();
}
