//! Cross-crate agreement tests: with overheads disabled, the discrete-event
//! simulator must land close to the closed-form models — they describe the
//! same schedules. These tests pin the relationship between `mlscale-core`
//! (formulas) and `mlscale-sim` (event-level execution).

use mlscale::model::comm::{AlphaBeta, CommModel, HalvingDoubling, Hierarchical, RingAllReduce};
use mlscale::model::hardware::{presets, ClusterSpec, LinkSpec, NodeSpec, RackSpec};
use mlscale::model::metrics::Comparison;
use mlscale::model::models::gd::{GdComm, GradientDescentModel};
use mlscale::model::units::{Bits, BitsPerSec, FlopCount, FlopsRate, Seconds};
use mlscale::sim::bsp::{simulate, BspConfig, BspProgram, CommPhase, SuperstepSpec};
use mlscale::sim::collectives::{BroadcastKind, ReduceKind};
use mlscale::sim::overhead::OverheadModel;
use mlscale::workloads::gd::GdWorkload;

fn test_cluster() -> ClusterSpec {
    ClusterSpec::new(
        NodeSpec::new(FlopsRate::giga(50.0), 1.0),
        LinkSpec::bandwidth_only(BitsPerSec::giga(1.0)),
    )
}

#[test]
fn pure_compute_simulation_is_exact() {
    let config = BspConfig {
        cluster: test_cluster(),
        overhead: OverheadModel::None,
        seed: 3,
    };
    for n in [1usize, 2, 5, 16] {
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(1e12, n, CommPhase::None)],
            iterations: 2,
        };
        let simulated = simulate(&program, &config, n).mean_iteration();
        let analytic = 1e12 / 50e9 / n as f64;
        assert!(
            (simulated.as_secs() - analytic).abs() / analytic < 1e-9,
            "n={n}: {simulated} vs {analytic}"
        );
    }
}

#[test]
fn tree_exchange_simulation_within_discretisation_of_model() {
    // The model charges log₂(n) rounds; the binomial-tree schedule needs
    // ⌈log₂(n+1)⌉ rounds for n workers + master. On powers of two minus
    // one they coincide; elsewhere they differ by at most one round each
    // way.
    let volume = 1e9; // 1 s per transfer at 1 Gbit/s
    let config = BspConfig {
        cluster: test_cluster(),
        overhead: OverheadModel::None,
        seed: 3,
    };
    for n in [3usize, 7, 15, 31] {
        let program = BspProgram {
            supersteps: vec![SuperstepSpec {
                loads: vec![0.0; n],
                comm: CommPhase::GradientExchange {
                    bits: volume,
                    broadcast: BroadcastKind::Tree,
                    reduce: ReduceKind::Tree,
                },
            }],
            iterations: 1,
        };
        let simulated = simulate(&program, &config, n).mean_iteration().as_secs();
        let model = 2.0 * (n as f64).log2(); // two tree stages
        assert!(
            (simulated - model).abs() <= 2.0 + 1e-9,
            "n={n}: simulated {simulated:.2} vs model {model:.2}"
        );
    }
}

#[test]
fn fig2_workload_ideal_sim_tracks_model() {
    let workload = GdWorkload::ideal(GradientDescentModel {
        cost_per_example: FlopCount::new(6.0 * 12e6),
        batch_size: 60_000.0,
        params: 12e6,
        bits_per_param: 64,
        cluster: presets::spark_cluster(),
        comm: GdComm::Spark,
    });
    let ns: Vec<usize> = (1..=16).collect();
    let (model, sim) = workload.strong_curves(&ns);
    let cmp = Comparison::join(&model.speedups(), &sim.speedups());
    assert!(
        cmp.mape() < 20.0,
        "overhead-free simulation should track the model: MAPE {:.1}%",
        cmp.mape()
    );
    // Identical single-node times: no communication, no overhead.
    let m1 = model.time_at(1).unwrap();
    let s1 = sim.time_at(1).unwrap();
    assert!((m1 / s1 - 1.0).abs() < 1e-9);
}

#[test]
fn overhead_only_slows_things_down() {
    let base = GdWorkload::ideal(GradientDescentModel {
        cost_per_example: FlopCount::new(1e7),
        batch_size: 10_000.0,
        params: 1e6,
        bits_per_param: 32,
        cluster: test_cluster(),
        comm: GdComm::TwoStageTree,
    });
    let with_overhead = GdWorkload {
        overhead: OverheadModel::Exponential { mean: 0.05 },
        ..base
    };
    for n in [1usize, 4, 9] {
        assert!(
            with_overhead.simulate_strong(n) > base.simulate_strong(n),
            "overhead must increase the simulated time at n={n}"
        );
    }
}

#[test]
fn simulated_times_respect_bandwidth_lower_bound() {
    // No schedule can beat volume/bandwidth for the gradient push of the
    // final reducer into the master.
    let volume = 2e9;
    let config = BspConfig {
        cluster: test_cluster(),
        overhead: OverheadModel::None,
        seed: 1,
    };
    for (bk, rk) in [
        (BroadcastKind::Flat, ReduceKind::Flat),
        (BroadcastKind::Tree, ReduceKind::Tree),
        (BroadcastKind::Torrent, ReduceKind::TwoWave),
    ] {
        let program = BspProgram {
            supersteps: vec![SuperstepSpec {
                loads: vec![0.0; 8],
                comm: CommPhase::GradientExchange {
                    bits: volume,
                    broadcast: bk,
                    reduce: rk,
                },
            }],
            iterations: 1,
        };
        let t = simulate(&program, &config, 8).mean_iteration();
        assert!(
            t >= Seconds::new(2.0 * volume / 1e9 - 1e-9),
            "reduce+broadcast cannot beat 2·volume/bandwidth: {t}"
        );
    }
}

/// Simulated time of one communication-only superstep (zero compute) on
/// `cluster` with `n` workers.
fn comm_only_sim(cluster: ClusterSpec, n: usize, comm: CommPhase) -> f64 {
    let config = BspConfig {
        cluster,
        overhead: OverheadModel::None,
        seed: 9,
    };
    let program = BspProgram {
        supersteps: vec![SuperstepSpec {
            loads: vec![0.0; n],
            comm,
        }],
        iterations: 1,
    };
    simulate(&program, &config, n).mean_iteration().as_secs()
}

/// A latency-bearing flat cluster for the α–β collective twins.
fn alpha_beta_cluster() -> ClusterSpec {
    ClusterSpec::new(
        NodeSpec::new(FlopsRate::giga(50.0), 1.0),
        LinkSpec::new(BitsPerSec::giga(1.0), Seconds::from_micros(200.0)),
    )
}

#[test]
fn ring_alpha_beta_model_matches_simulator_twin() {
    // t = 2(n−1)·α + 2(n−1)/n·M/B in both descriptions: the analytic ring
    // and the chunked ring schedule agree within 5 % for every n.
    let cluster = alpha_beta_cluster();
    let volume = 3e8;
    let model = AlphaBeta {
        inner: RingAllReduce {
            volume: Bits::new(volume),
            bandwidth: cluster.link.bandwidth,
        },
        latency: cluster.link.latency,
    };
    for n in 2..=64usize {
        let analytic = model.time(n).as_secs();
        let simulated = comm_only_sim(cluster, n, CommPhase::RingAllReduce { bits: volume });
        assert!(
            (simulated - analytic).abs() / analytic < 0.05,
            "n={n}: sim {simulated:.6} vs model {analytic:.6}"
        );
    }
}

#[test]
fn halving_doubling_model_matches_simulator_twin() {
    let cluster = alpha_beta_cluster();
    let volume = 3e8;
    let model = AlphaBeta {
        inner: HalvingDoubling {
            volume: Bits::new(volume),
            bandwidth: cluster.link.bandwidth,
        },
        latency: cluster.link.latency,
    };
    for n in 2..=64usize {
        let analytic = model.time(n).as_secs();
        let simulated = comm_only_sim(cluster, n, CommPhase::HalvingDoubling { bits: volume });
        assert!(
            (simulated - analytic).abs() / analytic < 0.05,
            "n={n}: sim {simulated:.6} vs model {analytic:.6}"
        );
    }
}

#[test]
fn hierarchical_model_matches_simulator_twin() {
    // Two-tier pod: fast low-latency intra-rack links, slow high-latency
    // uplinks. The analytic phase sum must track the event-level schedule
    // (intra tree reduce → leader ring → intra tree broadcast) within 5 %.
    let cluster = ClusterSpec::new(
        NodeSpec::new(FlopsRate::giga(50.0), 1.0),
        LinkSpec::new(BitsPerSec::giga(10.0), Seconds::from_micros(5.0)),
    )
    .with_racks(RackSpec::new(
        8,
        LinkSpec::new(BitsPerSec::giga(1.0), Seconds::from_micros(50.0)),
    ));
    let volume = 3e8;
    let model = Hierarchical::from_cluster(Bits::new(volume), &cluster);
    for n in 2..=64usize {
        let analytic = model.time(n).as_secs();
        let simulated = comm_only_sim(cluster, n, CommPhase::Hierarchical { bits: volume });
        assert!(
            (simulated - analytic).abs() / analytic < 0.05,
            "n={n}: sim {simulated:.6} vs model {analytic:.6}"
        );
    }
}

#[test]
fn flat_collectives_on_racked_cluster_use_the_uplink_tier() {
    // A flat (topology-blind) collective on a racked cluster must not be
    // priced as if every hop were intra-rack. The RackTiered model charges
    // the uplink tier once the job spans racks: exact for the ring (its
    // pipeline is gated by the slowest link on the cycle), a conservative
    // upper bound for tree-shaped schedules.
    let pod = presets::two_tier_pod(); // racks of 16
    let mnist = GradientDescentModel {
        cluster: pod,
        comm: GdComm::Ring,
        ..mlscale::workloads::experiments::figures::fig2_model()
    };
    let bits = mnist.param_volume().get();
    for n in [2usize, 8, 16, 17, 24, 32, 48, 64] {
        let analytic = mnist.comm_time(n).as_secs();
        let simulated = comm_only_sim(pod, n, CommPhase::RingAllReduce { bits });
        assert!(
            (simulated - analytic).abs() / analytic < 0.05,
            "ring n={n}: sim {simulated:.4} vs model {analytic:.4}"
        );
    }
    // Tree and halving/doubling keep some rounds on fast intra links, so
    // the uplink-tier model must bound the simulation from above — never
    // promise speedups the racked network cannot deliver.
    for comm in [GdComm::HalvingDoubling, GdComm::TwoStageTree] {
        let m = GradientDescentModel { comm, ..mnist };
        for n in [24usize, 32, 48, 64] {
            let analytic = m.comm_time(n).as_secs();
            let phase = match comm {
                GdComm::HalvingDoubling => CommPhase::HalvingDoubling { bits },
                _ => CommPhase::GradientExchange {
                    bits,
                    broadcast: BroadcastKind::Tree,
                    reduce: ReduceKind::Tree,
                },
            };
            let simulated = comm_only_sim(pod, n, phase);
            assert!(
                analytic >= simulated * 0.999,
                "{:?} n={n}: model {analytic:.4} must bound sim {simulated:.4}",
                comm
            );
        }
    }
}

#[test]
fn latency_free_exhibits_unchanged_by_alpha_beta_layer() {
    // With every latency at zero the α–β layer must vanish: the Fig 1
    // example optimum stays at 14 and the Fig 2 Spark optimum at 9.
    let fig1 = mlscale::workloads::experiments::fig1();
    let opt = fig1
        .stats
        .iter()
        .find(|s| s.label.contains("optimal"))
        .expect("fig1 reports an optimum");
    assert_eq!(opt.value, 14.0, "Fig 1 optimum must stay at 14");
    // Pin the *canonical* exhibit model, so drift in figures::fig2_model
    // itself is caught here too.
    let fig2 = mlscale::workloads::experiments::figures::fig2_model();
    let (n_opt, _) = fig2.strong_curve(1..=13).optimal();
    assert_eq!(n_opt, 9, "Fig 2 optimum must stay at 9");
}

#[test]
fn shared_memory_removes_communication_entirely() {
    let config = BspConfig {
        cluster: presets::dl980(),
        overhead: OverheadModel::None,
        seed: 5,
    };
    let f = config.cluster.flops().get();
    let n = 8;
    let program = BspProgram {
        supersteps: vec![SuperstepSpec {
            loads: vec![f / n as f64; n], // 1/n s of compute each
            comm: CommPhase::SharedMedium { total_bits: 1e18 },
        }],
        iterations: 1,
    };
    let t = simulate(&program, &config, n).mean_iteration();
    assert!((t.as_secs() - 1.0 / n as f64).abs() < 1e-9);
}
