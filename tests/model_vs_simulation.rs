//! Cross-crate agreement tests: with overheads disabled, the discrete-event
//! simulator must land close to the closed-form models — they describe the
//! same schedules. These tests pin the relationship between `mlscale-core`
//! (formulas) and `mlscale-sim` (event-level execution).

use mlscale::model::hardware::{presets, ClusterSpec, LinkSpec, NodeSpec};
use mlscale::model::metrics::Comparison;
use mlscale::model::models::gd::{GdComm, GradientDescentModel};
use mlscale::model::units::{BitsPerSec, FlopCount, FlopsRate, Seconds};
use mlscale::sim::bsp::{simulate, BspConfig, BspProgram, CommPhase, SuperstepSpec};
use mlscale::sim::collectives::{BroadcastKind, ReduceKind};
use mlscale::sim::overhead::OverheadModel;
use mlscale::workloads::gd::GdWorkload;

fn test_cluster() -> ClusterSpec {
    ClusterSpec::new(
        NodeSpec::new(FlopsRate::giga(50.0), 1.0),
        LinkSpec::bandwidth_only(BitsPerSec::giga(1.0)),
    )
}

#[test]
fn pure_compute_simulation_is_exact() {
    let config = BspConfig {
        cluster: test_cluster(),
        overhead: OverheadModel::None,
        seed: 3,
    };
    for n in [1usize, 2, 5, 16] {
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(1e12, n, CommPhase::None)],
            iterations: 2,
        };
        let simulated = simulate(&program, &config, n).mean_iteration();
        let analytic = 1e12 / 50e9 / n as f64;
        assert!(
            (simulated.as_secs() - analytic).abs() / analytic < 1e-9,
            "n={n}: {simulated} vs {analytic}"
        );
    }
}

#[test]
fn tree_exchange_simulation_within_discretisation_of_model() {
    // The model charges log₂(n) rounds; the binomial-tree schedule needs
    // ⌈log₂(n+1)⌉ rounds for n workers + master. On powers of two minus
    // one they coincide; elsewhere they differ by at most one round each
    // way.
    let volume = 1e9; // 1 s per transfer at 1 Gbit/s
    let config = BspConfig {
        cluster: test_cluster(),
        overhead: OverheadModel::None,
        seed: 3,
    };
    for n in [3usize, 7, 15, 31] {
        let program = BspProgram {
            supersteps: vec![SuperstepSpec {
                loads: vec![0.0; n],
                comm: CommPhase::GradientExchange {
                    bits: volume,
                    broadcast: BroadcastKind::Tree,
                    reduce: ReduceKind::Tree,
                },
            }],
            iterations: 1,
        };
        let simulated = simulate(&program, &config, n).mean_iteration().as_secs();
        let model = 2.0 * (n as f64).log2(); // two tree stages
        assert!(
            (simulated - model).abs() <= 2.0 + 1e-9,
            "n={n}: simulated {simulated:.2} vs model {model:.2}"
        );
    }
}

#[test]
fn fig2_workload_ideal_sim_tracks_model() {
    let workload = GdWorkload::ideal(GradientDescentModel {
        cost_per_example: FlopCount::new(6.0 * 12e6),
        batch_size: 60_000.0,
        params: 12e6,
        bits_per_param: 64,
        cluster: presets::spark_cluster(),
        comm: GdComm::Spark,
    });
    let ns: Vec<usize> = (1..=16).collect();
    let (model, sim) = workload.strong_curves(&ns);
    let cmp = Comparison::join(&model.speedups(), &sim.speedups());
    assert!(
        cmp.mape() < 20.0,
        "overhead-free simulation should track the model: MAPE {:.1}%",
        cmp.mape()
    );
    // Identical single-node times: no communication, no overhead.
    let m1 = model.time_at(1).unwrap();
    let s1 = sim.time_at(1).unwrap();
    assert!((m1 / s1 - 1.0).abs() < 1e-9);
}

#[test]
fn overhead_only_slows_things_down() {
    let base = GdWorkload::ideal(GradientDescentModel {
        cost_per_example: FlopCount::new(1e7),
        batch_size: 10_000.0,
        params: 1e6,
        bits_per_param: 32,
        cluster: test_cluster(),
        comm: GdComm::TwoStageTree,
    });
    let with_overhead = GdWorkload {
        overhead: OverheadModel::Exponential { mean: 0.05 },
        ..base
    };
    for n in [1usize, 4, 9] {
        assert!(
            with_overhead.simulate_strong(n) > base.simulate_strong(n),
            "overhead must increase the simulated time at n={n}"
        );
    }
}

#[test]
fn simulated_times_respect_bandwidth_lower_bound() {
    // No schedule can beat volume/bandwidth for the gradient push of the
    // final reducer into the master.
    let volume = 2e9;
    let config = BspConfig {
        cluster: test_cluster(),
        overhead: OverheadModel::None,
        seed: 1,
    };
    for (bk, rk) in [
        (BroadcastKind::Flat, ReduceKind::Flat),
        (BroadcastKind::Tree, ReduceKind::Tree),
        (BroadcastKind::Torrent, ReduceKind::TwoWave),
    ] {
        let program = BspProgram {
            supersteps: vec![SuperstepSpec {
                loads: vec![0.0; 8],
                comm: CommPhase::GradientExchange {
                    bits: volume,
                    broadcast: bk,
                    reduce: rk,
                },
            }],
            iterations: 1,
        };
        let t = simulate(&program, &config, 8).mean_iteration();
        assert!(
            t >= Seconds::new(2.0 * volume / 1e9 - 1e-9),
            "reduce+broadcast cannot beat 2·volume/bandwidth: {t}"
        );
    }
}

#[test]
fn shared_memory_removes_communication_entirely() {
    let config = BspConfig {
        cluster: presets::dl980(),
        overhead: OverheadModel::None,
        seed: 5,
    };
    let f = config.cluster.flops().get();
    let n = 8;
    let program = BspProgram {
        supersteps: vec![SuperstepSpec {
            loads: vec![f / n as f64; n], // 1/n s of compute each
            comm: CommPhase::SharedMedium { total_bits: 1e18 },
        }],
        iterations: 1,
    };
    let t = simulate(&program, &config, n).mean_iteration();
    assert!((t.as_secs() - 1.0 / n as f64).abs() < 1e-9);
}
