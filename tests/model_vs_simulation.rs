//! Cross-crate agreement tests: with overheads disabled, the discrete-event
//! simulator must land close to the closed-form models — they describe the
//! same schedules. These tests pin the relationship between `mlscale-core`
//! (formulas) and `mlscale-sim` (event-level execution).

use mlscale::model::comm::{AlphaBeta, CommModel, HalvingDoubling, Hierarchical, RingAllReduce};
use mlscale::model::hardware::{presets, ClusterSpec, Heterogeneity, LinkSpec, NodeSpec, RackSpec};
use mlscale::model::metrics::Comparison;
use mlscale::model::models::asyncgd::AsyncGdModel;
use mlscale::model::models::gd::{GdComm, GradientDescentModel};
use mlscale::model::straggler::StragglerModel;
use mlscale::model::units::{Bits, BitsPerSec, FlopCount, FlopsRate, Seconds};
use mlscale::sim::bsp::{
    simulate, simulate_with_stragglers, BspConfig, BspProgram, CommPhase, StragglerSim,
    SuperstepSpec,
};
use mlscale::sim::collectives::{BroadcastKind, ReduceKind};
use mlscale::sim::overhead::OverheadModel;
use mlscale::sim::paramserver::{simulate_async, ParamServerConfig};
use mlscale::workloads::gd::GdWorkload;

fn test_cluster() -> ClusterSpec {
    ClusterSpec::new(
        NodeSpec::new(FlopsRate::giga(50.0), 1.0),
        LinkSpec::bandwidth_only(BitsPerSec::giga(1.0)),
    )
}

#[test]
fn pure_compute_simulation_is_exact() {
    let config = BspConfig {
        cluster: test_cluster(),
        overhead: OverheadModel::None,
        seed: 3,
    };
    for n in [1usize, 2, 5, 16] {
        let program = BspProgram {
            supersteps: vec![SuperstepSpec::even(1e12, n, CommPhase::None)],
            iterations: 2,
        };
        let simulated = simulate(&program, &config, n).mean_iteration();
        let analytic = 1e12 / 50e9 / n as f64;
        assert!(
            (simulated.as_secs() - analytic).abs() / analytic < 1e-9,
            "n={n}: {simulated} vs {analytic}"
        );
    }
}

#[test]
fn tree_exchange_simulation_within_discretisation_of_model() {
    // The model charges log₂(n) rounds; the binomial-tree schedule needs
    // ⌈log₂(n+1)⌉ rounds for n workers + master. On powers of two minus
    // one they coincide; elsewhere they differ by at most one round each
    // way.
    let volume = 1e9; // 1 s per transfer at 1 Gbit/s
    let config = BspConfig {
        cluster: test_cluster(),
        overhead: OverheadModel::None,
        seed: 3,
    };
    for n in [3usize, 7, 15, 31] {
        let program = BspProgram {
            supersteps: vec![SuperstepSpec {
                loads: vec![0.0; n],
                comm: CommPhase::GradientExchange {
                    bits: volume,
                    broadcast: BroadcastKind::Tree,
                    reduce: ReduceKind::Tree,
                },
            }],
            iterations: 1,
        };
        let simulated = simulate(&program, &config, n).mean_iteration().as_secs();
        let model = 2.0 * (n as f64).log2(); // two tree stages
        assert!(
            (simulated - model).abs() <= 2.0 + 1e-9,
            "n={n}: simulated {simulated:.2} vs model {model:.2}"
        );
    }
}

#[test]
fn fig2_workload_ideal_sim_tracks_model() {
    let workload = GdWorkload::ideal(GradientDescentModel {
        cost_per_example: FlopCount::new(6.0 * 12e6),
        batch_size: 60_000.0,
        params: 12e6,
        bits_per_param: 64,
        cluster: presets::spark_cluster(),
        comm: GdComm::Spark,
    });
    let ns: Vec<usize> = (1..=16).collect();
    let (model, sim) = workload.strong_curves(&ns);
    let cmp = Comparison::join(&model.speedups(), &sim.speedups());
    assert!(
        cmp.mape() < 20.0,
        "overhead-free simulation should track the model: MAPE {:.1}%",
        cmp.mape()
    );
    // Identical single-node times: no communication, no overhead.
    let m1 = model.time_at(1).unwrap();
    let s1 = sim.time_at(1).unwrap();
    assert!((m1 / s1 - 1.0).abs() < 1e-9);
}

#[test]
fn overhead_only_slows_things_down() {
    let base = GdWorkload::ideal(GradientDescentModel {
        cost_per_example: FlopCount::new(1e7),
        batch_size: 10_000.0,
        params: 1e6,
        bits_per_param: 32,
        cluster: test_cluster(),
        comm: GdComm::TwoStageTree,
    });
    let with_overhead = GdWorkload {
        overhead: OverheadModel::Exponential { mean: 0.05 },
        ..base
    };
    for n in [1usize, 4, 9] {
        assert!(
            with_overhead.simulate_strong(n) > base.simulate_strong(n),
            "overhead must increase the simulated time at n={n}"
        );
    }
}

#[test]
fn simulated_times_respect_bandwidth_lower_bound() {
    // No schedule can beat volume/bandwidth for the gradient push of the
    // final reducer into the master.
    let volume = 2e9;
    let config = BspConfig {
        cluster: test_cluster(),
        overhead: OverheadModel::None,
        seed: 1,
    };
    for (bk, rk) in [
        (BroadcastKind::Flat, ReduceKind::Flat),
        (BroadcastKind::Tree, ReduceKind::Tree),
        (BroadcastKind::Torrent, ReduceKind::TwoWave),
    ] {
        let program = BspProgram {
            supersteps: vec![SuperstepSpec {
                loads: vec![0.0; 8],
                comm: CommPhase::GradientExchange {
                    bits: volume,
                    broadcast: bk,
                    reduce: rk,
                },
            }],
            iterations: 1,
        };
        let t = simulate(&program, &config, 8).mean_iteration();
        assert!(
            t >= Seconds::new(2.0 * volume / 1e9 - 1e-9),
            "reduce+broadcast cannot beat 2·volume/bandwidth: {t}"
        );
    }
}

/// Simulated time of one communication-only superstep (zero compute) on
/// `cluster` with `n` workers.
fn comm_only_sim(cluster: ClusterSpec, n: usize, comm: CommPhase) -> f64 {
    let config = BspConfig {
        cluster,
        overhead: OverheadModel::None,
        seed: 9,
    };
    let program = BspProgram {
        supersteps: vec![SuperstepSpec {
            loads: vec![0.0; n],
            comm,
        }],
        iterations: 1,
    };
    simulate(&program, &config, n).mean_iteration().as_secs()
}

/// A latency-bearing flat cluster for the α–β collective twins.
fn alpha_beta_cluster() -> ClusterSpec {
    ClusterSpec::new(
        NodeSpec::new(FlopsRate::giga(50.0), 1.0),
        LinkSpec::new(BitsPerSec::giga(1.0), Seconds::from_micros(200.0)),
    )
}

#[test]
fn ring_alpha_beta_model_matches_simulator_twin() {
    // t = 2(n−1)·α + 2(n−1)/n·M/B in both descriptions: the analytic ring
    // and the chunked ring schedule agree within 5 % for every n.
    let cluster = alpha_beta_cluster();
    let volume = 3e8;
    let model = AlphaBeta {
        inner: RingAllReduce {
            volume: Bits::new(volume),
            bandwidth: cluster.link.bandwidth,
        },
        latency: cluster.link.latency,
    };
    assert_sim_tracks_model_over(2..=64, "ring α–β", |n| {
        let analytic = model.time(n).as_secs();
        let simulated = comm_only_sim(cluster, n, CommPhase::RingAllReduce { bits: volume });
        (analytic, simulated)
    });
}

#[test]
fn halving_doubling_model_matches_simulator_twin() {
    let cluster = alpha_beta_cluster();
    let volume = 3e8;
    let model = AlphaBeta {
        inner: HalvingDoubling {
            volume: Bits::new(volume),
            bandwidth: cluster.link.bandwidth,
        },
        latency: cluster.link.latency,
    };
    assert_sim_tracks_model_over(2..=64, "halving/doubling α–β", |n| {
        let analytic = model.time(n).as_secs();
        let simulated = comm_only_sim(cluster, n, CommPhase::HalvingDoubling { bits: volume });
        (analytic, simulated)
    });
}

#[test]
fn hierarchical_model_matches_simulator_twin() {
    // Two-tier pod: fast low-latency intra-rack links, slow high-latency
    // uplinks. The analytic phase sum must track the event-level schedule
    // (intra tree reduce → leader ring → intra tree broadcast) within 5 %.
    let cluster = ClusterSpec::new(
        NodeSpec::new(FlopsRate::giga(50.0), 1.0),
        LinkSpec::new(BitsPerSec::giga(10.0), Seconds::from_micros(5.0)),
    )
    .with_racks(RackSpec::new(
        8,
        LinkSpec::new(BitsPerSec::giga(1.0), Seconds::from_micros(50.0)),
    ));
    let volume = 3e8;
    let model = Hierarchical::from_cluster(Bits::new(volume), &cluster);
    assert_sim_tracks_model_over(2..=64, "hierarchical", |n| {
        let analytic = model.time(n).as_secs();
        let simulated = comm_only_sim(cluster, n, CommPhase::Hierarchical { bits: volume });
        (analytic, simulated)
    });
}

#[test]
fn flat_collectives_on_racked_cluster_use_the_uplink_tier() {
    // A flat (topology-blind) collective on a racked cluster must not be
    // priced as if every hop were intra-rack. The RackTiered model charges
    // the uplink tier once the job spans racks: exact for the ring (its
    // pipeline is gated by the slowest link on the cycle), a conservative
    // upper bound for tree-shaped schedules.
    let pod = presets::two_tier_pod(); // racks of 16
    let mnist = GradientDescentModel {
        cluster: pod,
        comm: GdComm::Ring,
        ..mlscale::workloads::experiments::figures::fig2_model()
    };
    let bits = mnist.param_volume().get();
    for n in [2usize, 8, 16, 17, 24, 32, 48, 64] {
        let analytic = mnist.comm_time(n).as_secs();
        let simulated = comm_only_sim(pod, n, CommPhase::RingAllReduce { bits });
        assert!(
            (simulated - analytic).abs() / analytic < 0.05,
            "ring n={n}: sim {simulated:.4} vs model {analytic:.4}"
        );
    }
    // Tree and halving/doubling keep some rounds on fast intra links, so
    // the uplink-tier model must bound the simulation from above — never
    // promise speedups the racked network cannot deliver.
    for comm in [GdComm::HalvingDoubling, GdComm::TwoStageTree] {
        let m = GradientDescentModel { comm, ..mnist };
        for n in [24usize, 32, 48, 64] {
            let analytic = m.comm_time(n).as_secs();
            let phase = match comm {
                GdComm::HalvingDoubling => CommPhase::HalvingDoubling { bits },
                _ => CommPhase::GradientExchange {
                    bits,
                    broadcast: BroadcastKind::Tree,
                    reduce: ReduceKind::Tree,
                },
            };
            let simulated = comm_only_sim(pod, n, phase);
            assert!(
                analytic >= simulated * 0.999,
                "{:?} n={n}: model {analytic:.4} must bound sim {simulated:.4}",
                comm
            );
        }
    }
}

#[test]
fn latency_free_exhibits_unchanged_by_alpha_beta_layer() {
    // With every latency at zero the α–β layer must vanish: the Fig 1
    // example optimum stays at 14 and the Fig 2 Spark optimum at 9.
    let fig1 = mlscale::workloads::experiments::fig1();
    let opt = fig1
        .stats
        .iter()
        .find(|s| s.label.contains("optimal"))
        .expect("fig1 reports an optimum");
    assert_eq!(opt.value, 14.0, "Fig 1 optimum must stay at 14");
    // Pin the *canonical* exhibit model, so drift in figures::fig2_model
    // itself is caught here too.
    let fig2 = mlscale::workloads::experiments::figures::fig2_model();
    let (n_opt, _) = fig2.strong_curve(1..=13).optimal();
    assert_eq!(n_opt, 9, "Fig 2 optimum must stay at 9");
}

/// Mean simulated barrier time of a compute-only superstep (1 s of work
/// per nominal worker) over `reps` seeded replications, with straggler
/// injection and optional heterogeneous speed factors.
fn mean_straggler_barrier(
    n: usize,
    model: StragglerModel,
    backup_k: usize,
    speed_factors: &[f64],
    reps: usize,
) -> f64 {
    let config = BspConfig {
        cluster: test_cluster(), // 50 Gflop/s nominal nodes
        overhead: OverheadModel::None,
        seed: 0xBA44 + n as u64,
    };
    let program = BspProgram {
        // 50 Gflop per worker = 1 s of base compute each.
        supersteps: vec![SuperstepSpec {
            loads: vec![50e9; n],
            comm: CommPhase::None,
        }],
        iterations: reps,
    };
    simulate_with_stragglers(
        &program,
        &config,
        n,
        speed_factors,
        &StragglerSim { model, backup_k },
    )
    .mean_iteration()
    .as_secs()
}

/// Runs `check(n)` → `(analytic, simulated)` over `ns` in parallel — the
/// per-`n` replications are independently seeded, so the fan-out
/// ([`mlscale::model::par`]) changes wall time only — and asserts each
/// pair lands within 5 %.
fn assert_sim_tracks_model_over(
    ns: impl IntoIterator<Item = usize>,
    label: &str,
    check: impl Fn(usize) -> (f64, f64) + Sync,
) {
    let ns: Vec<usize> = ns.into_iter().collect();
    let pairs = mlscale::model::par::map(&ns, |&n| check(n));
    for (&n, (analytic, simulated)) in ns.iter().zip(pairs) {
        assert!(
            (simulated - analytic).abs() / analytic < 0.05,
            "{label} n={n}: sim {simulated:.4} vs analytic {analytic:.4}"
        );
    }
}

#[test]
fn exponential_straggler_sim_matches_order_statistic_model() {
    // E[barrier] = 1 + mean·H_n exactly; the seeded replications must land
    // within 5 % for every n ∈ 2..=64.
    let model = StragglerModel::ExponentialTail { mean: 0.3 };
    assert_sim_tracks_model_over(2..=64, "exp", |n| {
        let analytic = model.expected_barrier(&vec![1.0; n], 0).as_secs();
        let simulated = mean_straggler_barrier(n, model, 0, &vec![1.0; n], 400);
        (analytic, simulated)
    });
}

#[test]
fn lognormal_straggler_sim_matches_order_statistic_model() {
    let model = StragglerModel::LogNormalTail {
        mu: -1.5,
        sigma: 1.0,
    };
    assert_sim_tracks_model_over(2..=64, "lognormal", |n| {
        let analytic = model.expected_barrier(&vec![1.0; n], 0).as_secs();
        let simulated = mean_straggler_barrier(n, model, 0, &vec![1.0; n], 600);
        (analytic, simulated)
    });
}

#[test]
fn heterogeneous_straggler_sim_matches_poisson_binomial_model() {
    // Every third worker at 60 % speed: the analytic side integrates the
    // Poisson-binomial order-statistic survival function; the simulator
    // draws per-worker delays on shifted bases. Exponential and lognormal
    // tails, n ∈ 2..=64.
    for (model, reps) in [
        (StragglerModel::ExponentialTail { mean: 0.25 }, 400),
        (
            StragglerModel::LogNormalTail {
                mu: -1.8,
                sigma: 0.9,
            },
            500,
        ),
    ] {
        assert_sim_tracks_model_over(2..=64, "hetero", |n| {
            let speeds: Vec<f64> = (0..n).map(|w| if w % 3 == 0 { 0.6 } else { 1.0 }).collect();
            let bases: Vec<f64> = speeds.iter().map(|s| 1.0 / s).collect();
            let analytic = model.expected_barrier(&bases, 0).as_secs();
            let simulated = mean_straggler_barrier(n, model, 0, &speeds, reps);
            (analytic, simulated)
        });
    }
}

#[test]
fn drop_slowest_k_sim_matches_order_statistic_model() {
    // The backup-worker mitigation: barrier = (n−k)-th order statistic on
    // both sides.
    let model = StragglerModel::ExponentialTail { mean: 0.4 };
    for k in [1usize, 2] {
        assert_sim_tracks_model_over([4usize, 8, 16, 32, 64], "drop-k", |n| {
            let analytic = model.expected_barrier(&vec![1.0; n], k).as_secs();
            let simulated = mean_straggler_barrier(n, model, k, &vec![1.0; n], 400);
            (analytic, simulated)
        });
    }
}

#[test]
fn straggler_workload_end_to_end_tracks_expected_curve() {
    // Full workload (compute + halving/doubling exchange, whose simulator
    // twin is exact) under an exponential tail: the expected-time analytic
    // curve and the straggler simulation agree within 5 % MAPE.
    let mut workload = GdWorkload::ideal(GradientDescentModel {
        cost_per_example: FlopCount::new(6.0 * 12e6),
        batch_size: 60_000.0,
        params: 12e6,
        bits_per_param: 64,
        cluster: presets::spark_cluster(),
        comm: GdComm::HalvingDoubling,
    })
    .with_stragglers(
        StragglerModel::ExponentialTail { mean: 2.0 },
        Heterogeneity::Uniform,
        0,
    );
    workload.iterations = 300;
    workload.seed = 0x5EED;
    let ns: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64];
    let (model, sim) = workload.expected_strong_curves(&ns);
    let mape = Comparison::join(&model.speedups(), &sim.speedups()).mape();
    assert!(
        mape < 5.0,
        "straggler workload must track its analytic twin: MAPE {mape:.2}%"
    );
}

/// The async parameter-server regression fixture: apply cost comparable
/// to the transfer cost, so the pipelined-vs-serialised server question
/// actually matters.
fn async_fixture() -> (AsyncGdModel, ParamServerConfig) {
    let cluster = ClusterSpec::new(
        NodeSpec::new(FlopsRate::giga(1.0), 1.0),
        LinkSpec::bandwidth_only(BitsPerSec::giga(10.0)),
    );
    let model = AsyncGdModel {
        grad_work: FlopCount::giga(1.0),
        worker_flops: cluster.flops(),
        server_flops: cluster.flops(),
        apply_work: FlopCount::new(8e7), // 0.08 s apply
        payload: Bits::new(1e9),         // 0.1 s transfer
        bandwidth: cluster.bandwidth(),
        latency: Seconds::zero(),
    };
    let config = ParamServerConfig {
        cluster,
        grad_flops: model.grad_work.get(),
        payload_bits: model.payload.get(),
        apply_flops: model.apply_work.get(),
        overhead: OverheadModel::None,
        seed: 3,
    };
    (model, config)
}

#[test]
fn paramserver_sim_throughput_matches_async_model() {
    // Pre-saturation the cycle (pull + compute + push + apply) sets the
    // rate; deep in saturation the server pipeline (max of NIC direction
    // and apply) caps it. The analytic model must track the event-level
    // simulation through both regimes and across the knee.
    let (model, config) = async_fixture();
    for n in [1usize, 2, 4, 8, 12, 16, 24, 32, 64] {
        let updates = (50 * n).max(200);
        let report = simulate_async(&config, n, updates);
        let predicted = model.throughput(n);
        assert!(
            (report.throughput - predicted).abs() / predicted < 0.05,
            "n={n}: sim {:.3} upd/s vs model {predicted:.3} upd/s",
            report.throughput
        );
    }
}

#[test]
fn paramserver_sim_staleness_matches_async_model() {
    // E[staleness] = n − 1 in and out of saturation: parallelism keeps
    // buying staleness after throughput stops improving.
    let (model, config) = async_fixture();
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let updates = (80 * n).max(400);
        let report = simulate_async(&config, n, updates);
        let predicted = model.expected_staleness(n);
        assert!(
            (report.mean_staleness - predicted).abs() <= 0.05 * predicted + 0.5,
            "n={n}: sim staleness {:.2} vs model {predicted:.2}",
            report.mean_staleness
        );
    }
    // The saturated regime specifically: throughput flat, staleness grows.
    let sat = model.saturation_point();
    let flat_a = simulate_async(&config, sat + 4, 60 * sat).throughput;
    let flat_b = simulate_async(&config, (sat + 4) * 2, 60 * sat).throughput;
    assert!(
        (flat_a - flat_b).abs() / flat_a < 0.05,
        "saturated throughput must stay flat: {flat_a} vs {flat_b}"
    );
}

#[test]
fn shared_memory_removes_communication_entirely() {
    let config = BspConfig {
        cluster: presets::dl980(),
        overhead: OverheadModel::None,
        seed: 5,
    };
    let f = config.cluster.flops().get();
    let n = 8;
    let program = BspProgram {
        supersteps: vec![SuperstepSpec {
            loads: vec![f / n as f64; n], // 1/n s of compute each
            comm: CommPhase::SharedMedium { total_bits: 1e18 },
        }],
        iterations: 1,
    };
    let t = simulate(&program, &config, n).mean_iteration();
    assert!((t.as_secs() - 1.0 / n as f64).abs() < 1e-9);
}
