//! Cross-cutting properties of the streaming, sharded, and adaptive
//! sweep paths, checked over the real scenario documents shipped in
//! `scenarios/`: the adaptive refiner must land on exactly the Pareto
//! frontier an exhaustive sweep finds, the sharded store must distil the
//! same roll-up bytes as the per-point path, and results restored from
//! shards must be the results that were evaluated.

use std::path::{Path, PathBuf};

use mlscale::model::planner::pareto_frontier;
use mlscale::scenario::{run, run_adaptive, run_checkpointed, run_sharded, ScenarioSpec};
use mlscale::workloads::ExperimentResult;

/// The (cost, time) objectives the adaptive refiner optimises, recomputed
/// from the public result stats: expected time at the optimum, and the
/// plan's cheapest cost when present (the `optimal n × time` node-seconds
/// proxy otherwise).
fn objectives(result: &ExperimentResult) -> Option<(f64, f64)> {
    let stat = |label: &str| {
        result
            .stats
            .iter()
            .find(|s| s.label == label)
            .map(|s| s.value)
    };
    let time = stat("time at optimum s")?;
    let cost = match stat("cheapest cost") {
        Some(cost) => cost,
        None => stat("optimal n")? * time,
    };
    Some((cost, time))
}

/// Checked-in scenarios with a sweepable grid — exhibits reproduce fixed
/// figures and single-point specs have nothing to shard or refine.
fn grid_scenarios() -> Vec<(PathBuf, ScenarioSpec)> {
    let mut specs = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir("scenarios")
        .expect("scenarios/ ships with the repo")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("read scenario");
        let spec = ScenarioSpec::from_json(&text)
            .unwrap_or_else(|e| panic!("{}: checked-in scenario invalid: {e}", path.display()));
        let is_exhibit = matches!(spec.workload, mlscale::scenario::WorkloadSpec::Exhibit(_));
        if !is_exhibit && !spec.sweep.is_empty() {
            specs.push((path, spec));
        }
    }
    assert!(
        specs.len() >= 2,
        "expected at least two grid scenarios, found {specs:?}",
        specs = specs
            .iter()
            .map(|(p, _)| p.display().to_string())
            .collect::<Vec<_>>()
    );
    specs
}

#[test]
fn adaptive_finds_the_exhaustive_frontier_on_every_checked_in_grid() {
    for (path, spec) in grid_scenarios() {
        let grid_len = spec.grid_len().expect("grid length");
        if grid_len > 1_000 {
            continue; // exhaustive reference must stay cheap in tests
        }
        let exhaustive = run(&spec).expect("exhaustive sweep");
        let objs: Vec<(f64, f64)> = exhaustive
            .points
            .iter()
            .map(|r| objectives(r).expect("every gd/bp result carries the objectives"))
            .collect();
        let mut want: Vec<(f64, f64)> = pareto_frontier(&objs)
            .into_iter()
            .map(|i| objs[i])
            .collect();
        want.sort_by(|a, b| a.partial_cmp(b).expect("finite objectives"));

        let adaptive = run_adaptive(&spec).expect("adaptive sweep");
        let mut got: Vec<(f64, f64)> = adaptive.frontier.iter().map(|f| (f.cost, f.time)).collect();
        got.sort_by(|a, b| a.partial_cmp(b).expect("finite objectives"));
        assert_eq!(
            got,
            want,
            "{}: adaptive frontier diverges from the exhaustive one",
            path.display()
        );
        assert!(
            adaptive.outcome.points.len() <= grid_len,
            "{}: adaptive evaluated more points than the grid holds",
            path.display()
        );
        // Every adaptive result must be the bit-identical exhaustive one.
        for (grid_point, result) in adaptive.outcome.grid.iter().zip(&adaptive.outcome.points) {
            assert_eq!(
                result,
                &exhaustive.points[grid_point.index],
                "{}: {} evaluated differently under refinement",
                path.display(),
                grid_point.id
            );
        }
    }
}

#[test]
fn sharded_rollup_matches_the_per_point_rollup_on_every_checked_in_grid() {
    let base = std::env::temp_dir().join(format!("mlscale-sweep-scale-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    for (path, spec) in grid_scenarios() {
        let grid_len = spec.grid_len().expect("grid length");
        if !(2..=1_000).contains(&grid_len) {
            continue;
        }
        let tag = path.file_stem().unwrap().to_string_lossy().into_owned();
        let per_point_dir = base.join(format!("{tag}-per-point"));
        let sharded_dir = base.join(format!("{tag}-sharded"));
        let checkpointed = run_checkpointed(&spec, &per_point_dir, false).expect("per-point sweep");
        // A shard size below the grid forces at least two shards.
        let shard_size = grid_len.div_ceil(2);
        let sharded = run_sharded(&spec, &sharded_dir, false, shard_size).expect("sharded sweep");
        assert!(sharded.shards >= 2, "{tag}: expected a real shard split");
        assert_eq!(
            checkpointed.outcome.rollup, sharded.rollup,
            "{tag}: roll-up reports differ between store layouts"
        );
        let rollup_file = |dir: &Path| {
            std::fs::read(dir.join(format!("{}-rollup.json", spec.name))).expect("roll-up file")
        };
        assert_eq!(
            rollup_file(&per_point_dir),
            rollup_file(&sharded_dir),
            "{tag}: roll-up files differ byte-for-byte between store layouts"
        );
        // The shard records are the per-point results, in grid order.
        let mut from_shards = Vec::new();
        for shard_path in &sharded.paths[..sharded.shards] {
            let text = std::fs::read_to_string(shard_path).expect("shard");
            for line in text.lines() {
                from_shards
                    .push(serde_json::from_str::<ExperimentResult>(line).expect("shard record"));
            }
        }
        assert_eq!(
            from_shards, checkpointed.outcome.points,
            "{tag}: shard records diverge from the per-point results"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}
