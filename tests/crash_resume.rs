//! Crash-safety tests of the real binary: a sweep subprocess killed at
//! a deterministic fault point (`MLSCALE_FAULTS=…=kill` aborts the
//! process mid-write-path), then resumed with `--resume`; the resumed
//! directory must be byte-identical to an uninterrupted run, with no
//! torn JSON at any intermediate state. Also covers the daemon's
//! SIGTERM drain: in-flight requests are answered and the process exits
//! 0 with idle keep-alive connections cleanly closed.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Command, Output, Stdio};
use std::time::{Duration, Instant};

/// A 6-point grid small enough to evaluate in well under a second.
const GRID_SCENARIO: &str = r#"{
  "name": "crashgrid",
  "workload": {"kind": "gd", "params": 12e6, "cost_per_example": 72e6,
               "batch": 60000, "bits": 64, "flops": 84.48e9,
               "bandwidth": 1e9, "max_n": 6},
  "sweep": [
    {"param": "comm", "values": ["tree", "ring"]},
    {"param": "latency", "values": [0, 1e-4, 1e-3]}
  ]
}"#;

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mlscale-crash-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn write_scenario(dir: &Path) -> std::path::PathBuf {
    let path = dir.join("crashgrid.json");
    std::fs::write(&path, GRID_SCENARIO).expect("write scenario");
    path
}

fn sweep(scenario: &Path, out: &Path, extra_args: &[&str], faults: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mlscale"));
    cmd.arg("sweep")
        .arg(scenario)
        .arg("--out")
        .arg(out)
        .args(extra_args);
    if let Some(spec) = faults {
        cmd.env("MLSCALE_FAULTS", spec);
    }
    cmd.output().expect("spawn mlscale sweep")
}

/// Sorted `.json` names in a sweep directory.
fn json_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("read sweep dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort();
    names
}

/// Every `.json` present must be complete, parseable JSON — a crash may
/// leave work missing, never a torn file.
fn assert_no_torn_json(dir: &Path) {
    for name in json_files(dir) {
        let text = std::fs::read_to_string(dir.join(&name)).expect("read result");
        serde_json::from_str::<serde::Value>(&text)
            .unwrap_or_else(|e| panic!("{name} is torn after the crash: {e}"));
    }
}

#[test]
fn sweep_killed_mid_run_resumes_byte_identical() {
    let dir = scratch("resume");
    let scenario = write_scenario(&dir);
    let clean_out = dir.join("clean");
    let crash_out = dir.join("crashed");

    let clean = sweep(&scenario, &clean_out, &[], None);
    assert!(
        clean.status.success(),
        "clean run: {}",
        String::from_utf8_lossy(&clean.stderr)
    );

    // Abort the process right after the third completed point lands.
    let killed = sweep(&scenario, &crash_out, &[], Some("sweep.after_point:3=kill"));
    assert!(!killed.status.success(), "the injected kill must abort");
    assert_no_torn_json(&crash_out);
    let survivors = json_files(&crash_out);
    assert!(
        !survivors.is_empty() && survivors.len() < json_files(&clean_out).len(),
        "a mid-run kill leaves some but not all points: {survivors:?}"
    );

    let resumed = sweep(&scenario, &crash_out, &["--resume"], None);
    assert!(
        resumed.status.success(),
        "resume: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(
        stdout.contains("resumed: 3 of 6 point(s)"),
        "resume must report the journal hits:\n{stdout}"
    );

    assert_eq!(json_files(&clean_out), json_files(&crash_out));
    for name in json_files(&clean_out) {
        let ours = std::fs::read(crash_out.join(&name)).expect("resumed file");
        let theirs = std::fs::read(clean_out.join(&name)).expect("clean file");
        assert_eq!(ours, theirs, "{name}: resumed bytes differ from clean run");
    }
    let leftovers: Vec<_> = std::fs::read_dir(&crash_out)
        .expect("dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "resume must clean temp orphans: {leftovers:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_during_the_point_write_leaves_only_a_temp_file() {
    let dir = scratch("midwrite");
    let scenario = write_scenario(&dir);
    let out = dir.join("out");

    // sweep.write_point fires between the temp-file write and its
    // rename: the abort must strand `.tmp` bytes, never a torn `.json`.
    let killed = sweep(&scenario, &out, &[], Some("sweep.write_point:2=kill"));
    assert!(!killed.status.success());
    assert_no_torn_json(&out);
    let stranded: Vec<_> = std::fs::read_dir(&out)
        .expect("dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".json.tmp"))
        .collect();
    assert_eq!(stranded.len(), 1, "the killed write leaves its temp file");

    let resumed = sweep(&scenario, &out, &["--resume"], None);
    assert!(
        resumed.status.success(),
        "resume: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_no_torn_json(&out);
    assert!(
        !std::fs::read_dir(&out).expect("dir").any(|e| e
            .expect("entry")
            .file_name()
            .to_string_lossy()
            .ends_with(".tmp")),
        "resume cleans the stranded temp file"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_sweep_killed_mid_run_resumes_byte_identical() {
    // `--per-point-max 2` pushes the 6-point grid through the sharded
    // store (3 shards of 2 records). Kill at both shard fault points —
    // mid-write (temp stranded, no torn shard) and post-journal — and
    // demand the resumed directory match an uninterrupted sharded run
    // byte for byte.
    for (tag, faults, expect_resumed) in [
        (
            "write",
            "sweep.write_shard:2=kill",
            "resumed: 2 of 6 point(s)",
        ),
        (
            "journal",
            "sweep.after_shard:2=kill",
            "resumed: 4 of 6 point(s)",
        ),
    ] {
        let dir = scratch(&format!("shard-{tag}"));
        let scenario = write_scenario(&dir);
        let clean_out = dir.join("clean");
        let crash_out = dir.join("crashed");

        let clean = sweep(&scenario, &clean_out, &["--per-point-max", "2"], None);
        assert!(
            clean.status.success(),
            "clean sharded run: {}",
            String::from_utf8_lossy(&clean.stderr)
        );

        let killed = sweep(
            &scenario,
            &crash_out,
            &["--per-point-max", "2"],
            Some(faults),
        );
        assert!(
            !killed.status.success(),
            "{tag}: the injected kill must abort"
        );
        assert_no_torn_json(&crash_out);
        // Any published shard must already be whole NDJSON.
        for entry in std::fs::read_dir(&crash_out).expect("dir") {
            let path = entry.expect("entry").path();
            if path.extension().is_some_and(|e| e == "ndjson") {
                let text = std::fs::read_to_string(&path).expect("shard");
                assert!(text.ends_with('\n'), "{}: torn shard", path.display());
                for line in text.lines() {
                    serde_json::from_str::<serde::Value>(line)
                        .unwrap_or_else(|e| panic!("{}: torn record: {e}", path.display()));
                }
            }
        }

        let resumed = sweep(
            &scenario,
            &crash_out,
            &["--per-point-max", "2", "--resume"],
            None,
        );
        assert!(
            resumed.status.success(),
            "{tag} resume: {}",
            String::from_utf8_lossy(&resumed.stderr)
        );
        let stdout = String::from_utf8_lossy(&resumed.stdout);
        assert!(
            stdout.contains(expect_resumed),
            "{tag}: resume must restore whole shards from the journal:\n{stdout}"
        );

        // Byte-identical across every file the clean run produced —
        // shards, roll-up, and journal alike — with no temp orphans.
        let names = |d: &Path| -> Vec<String> {
            let mut names: Vec<String> = std::fs::read_dir(d)
                .expect("dir")
                .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
                .collect();
            names.sort();
            names
        };
        assert_eq!(
            names(&clean_out),
            names(&crash_out),
            "{tag}: layout differs"
        );
        for name in names(&clean_out) {
            let ours = std::fs::read(crash_out.join(&name)).expect("resumed file");
            let theirs = std::fs::read(clean_out.join(&name)).expect("clean file");
            assert_eq!(
                ours, theirs,
                "{tag}: {name}: resumed bytes differ from the clean run"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn resume_refuses_a_changed_scenario_with_exit_2() {
    let dir = scratch("changed");
    let scenario = write_scenario(&dir);
    let out = dir.join("out");

    let killed = sweep(&scenario, &out, &[], Some("sweep.after_point:2=kill"));
    assert!(!killed.status.success());

    let changed = GRID_SCENARIO.replace("\"max_n\": 6", "\"max_n\": 7");
    std::fs::write(&scenario, changed).expect("edit scenario");
    let refused = sweep(&scenario, &out, &["--resume"], None);
    assert_eq!(refused.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&refused.stderr);
    assert!(
        stderr.contains("--resume") && stderr.contains("changed"),
        "refusal must name the flag and the cause:\n{stderr}"
    );

    // Restoring the original spec makes the same journal usable again.
    std::fs::write(&scenario, GRID_SCENARIO).expect("restore scenario");
    let resumed = sweep(&scenario, &out, &["--resume"], None);
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_without_a_journal_is_a_named_exit_2() {
    let dir = scratch("nojournal");
    let scenario = write_scenario(&dir);
    let refused = sweep(&scenario, &dir.join("fresh"), &["--resume"], None);
    assert_eq!(refused.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&refused.stderr);
    assert!(
        stderr.contains("no sweep journal"),
        "must say what is missing:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_mlscale_faults_is_refused_up_front_for_every_verb() {
    for verb in [
        vec!["gd", "--preset", "fig2", "--max-n", "4"],
        vec!["serve", "--addr", "127.0.0.1:0"],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_mlscale"))
            .args(&verb)
            .env("MLSCALE_FAULTS", "sweep.after_point:zero=kill")
            .output()
            .expect("spawn mlscale");
        assert_eq!(out.status.code(), Some(2), "verb {:?}", verb[0]);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("MLSCALE_FAULTS"),
            "diagnostic names the variable:\n{stderr}"
        );
    }
}

#[test]
fn sigterm_drains_the_daemon_and_exits_zero() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mlscale"))
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mlscale serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("banner");
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
        .to_string();

    // One served request over a keep-alive connection left idle: drain
    // must answer it, then close the idle connection with a clean EOF.
    let body = r#"{"name": "d", "workload": {"kind": "gd", "preset": "fig2", "max_n": 4}}"#;
    let mut idle = TcpStream::connect(&addr).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    write!(
        idle,
        "POST /gd HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut response_reader = BufReader::new(idle.try_clone().expect("clone"));
    let mut status_line = String::new();
    response_reader.read_line(&mut status_line).expect("status");
    assert!(status_line.starts_with("HTTP/1.1 200"), "{status_line}");
    let mut length = 0usize;
    loop {
        let mut line = String::new();
        response_reader.read_line(&mut line).expect("header");
        if line == "\r\n" {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length: ") {
            length = v.trim().parse().expect("length");
        }
    }
    let mut response_body = vec![0u8; length];
    response_reader
        .read_exact(&mut response_body)
        .expect("body");

    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");

    // Graceful drain: the process must exit 0 well within the deadline.
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "daemon did not drain in 10 s");
        std::thread::sleep(Duration::from_millis(25));
    };
    assert_eq!(status.code(), Some(0), "SIGTERM drain must exit 0");

    // The idle keep-alive connection was closed, not abandoned.
    let mut rest = Vec::new();
    idle.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty(), "no stray bytes after drain");
}
