//! Property-based integration tests over the substrates: partition
//! invariants on generated graphs, Monte-Carlo-estimator consistency with
//! exact partition statistics, BP marginal normalisation on random MRFs,
//! and speedup-curve laws on simulator output.

use mlscale::graph::generators::{chung_lu, gnm};
use mlscale::graph::mrf::{BeliefPropagation, PairwiseMrf, PairwisePotential};
use mlscale::graph::partition::{Partition, PartitionStats};
use mlscale::model::models::graphinf::{duplicate_edge_correction, max_edges_monte_carlo};
use mlscale::model::speedup::SpeedupCurve;
use mlscale::model::units::Seconds;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every partition of every random graph conserves edges:
    /// Σ intra + cut = E and Σ degree-sums = 2E.
    #[test]
    fn partition_conserves_edges(
        vertices in 20usize..300,
        edge_factor in 1u64..8,
        workers in 1usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = vertices as u64 * edge_factor;
        let g = gnm(vertices, edges, &mut rng);
        let p = Partition::random(vertices, workers, &mut rng);
        let s = PartitionStats::compute(&g, &p);
        let intra: u64 = s.intra_edges.iter().sum();
        prop_assert_eq!(intra + s.cut_edges, g.edges());
        prop_assert_eq!(s.degree_sums.iter().sum::<u64>(), 2 * g.edges());
        // Incident edges: per-worker degree sum minus double-counted intra.
        prop_assert_eq!(
            s.incident_edges.iter().sum::<u64>(),
            g.edges() + s.cut_edges
        );
        // Replication factor bounded by min(workers-1, ...) and max load
        // at least the average.
        prop_assert!(s.replication_factor() <= (workers - 1) as f64 + 1e-12);
        let avg = (g.edges() as f64) / workers as f64;
        prop_assert!(s.max_incident_edges() as f64 >= avg - 1e-9);
    }

    /// The Monte-Carlo estimator stays within a sane band of the exact
    /// maximum incident-edge count: never below balanced E/n, never above
    /// the whole edge set (plus cut slack).
    #[test]
    fn monte_carlo_estimator_band(
        vertices in 50usize..400,
        workers in 2usize..10,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gnm(vertices, vertices as u64 * 4, &mut rng);
        let est = max_edges_monte_carlo(&g.degree_sequence(), workers, 4, &mut rng);
        let e = g.edges() as f64;
        prop_assert!(est >= e / workers as f64 * 0.8, "est {} vs balanced {}", est, e / workers as f64);
        prop_assert!(est <= 2.0 * e, "est {} vs total {}", est, e);
    }

    /// The duplicate correction never exceeds the per-worker degree mass
    /// and vanishes as workers grow.
    #[test]
    fn duplicate_correction_sane(
        v in 10f64..1e6,
        avg_deg in 1f64..50.0,
        n in 1usize..100,
    ) {
        let e = v * avg_deg / 2.0;
        let dup = duplicate_edge_correction(v, e, n);
        prop_assert!(dup >= 0.0);
        prop_assert!(dup <= e + 1e-9, "dup {} vs E {}", dup, e);
        if n > 1 {
            let dup_more = duplicate_edge_correction(v, e, n * 2);
            prop_assert!(dup_more <= dup + 1e-9, "correction must shrink with n");
        }
    }

    /// BP marginals are always normalised probability vectors, whatever
    /// the (positive) potentials and however few iterations ran.
    #[test]
    fn bp_marginals_normalised(
        seed in 0u64..200,
        states in 2usize..5,
        iterations in 1usize..8,
        same in 0.5f64..3.0,
        diff in 0.1f64..1.5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = chung_lu(&vec![2.0; 40], 60, &mut rng);
        let vertices = g.vertices();
        let unary: Vec<f64> = (0..vertices * states)
            .map(|i| 0.2 + ((i * 2_654_435_761) % 1000) as f64 / 500.0)
            .collect();
        let mrf = PairwiseMrf::new(g, states, unary, PairwisePotential::Potts { same, diff });
        let mut bp = BeliefPropagation::new(&mrf);
        for _ in 0..iterations {
            bp.iterate();
        }
        for v in 0..vertices {
            let b = bp.belief(v as u32);
            let total: f64 = b.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(b.iter().all(|&x| x >= 0.0));
        }
    }

    /// Speedup-curve laws on arbitrary positive time series: s(baseline)=1,
    /// efficiency = s·n0/n, optimum dominates all points.
    #[test]
    fn speedup_curve_laws(times in prop::collection::vec(0.01f64..100.0, 2..20)) {
        let samples: Vec<(usize, Seconds)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i + 1, Seconds::new(t)))
            .collect();
        let curve = SpeedupCurve::from_samples(samples);
        prop_assert!((curve.speedup_at(1).unwrap() - 1.0).abs() < 1e-12);
        let (_, s_opt) = curve.optimal();
        for (n, s) in curve.speedups() {
            prop_assert!(s <= s_opt + 1e-12);
            let eff = curve.efficiencies().into_iter().find(|&(m, _)| m == n).unwrap().1;
            prop_assert!((eff - s / n as f64).abs() < 1e-12);
        }
    }
}

/// Exact partitions feed the model: the MaxLoad computation model over
/// measured per-worker loads equals max(load)/F by construction.
#[test]
fn exact_loads_round_trip_through_model() {
    use mlscale::model::comp::{CompModel, MaxLoad};
    use mlscale::model::units::{FlopCount, FlopsRate};
    let mut rng = StdRng::seed_from_u64(77);
    let g = gnm(500, 2500, &mut rng);
    let loads: Vec<FlopCount> = (1..=8)
        .map(|n| {
            let p = Partition::random(500, n, &mut rng);
            let s = PartitionStats::compute(&g, &p);
            FlopCount::new(s.max_incident_edges() as f64 * 14.0)
        })
        .collect();
    let model = MaxLoad {
        max_load_per_n: loads.clone(),
        rate: FlopsRate::giga(1.0),
    };
    for n in 1..=8usize {
        let expected = loads[n - 1].get() / 1e9;
        assert!((model.time(n).as_secs() - expected).abs() < 1e-12);
    }
}
