//! End-to-end tests of `mlscale serve`: a real subprocess bound to a
//! real socket, hit over TCP. Covers byte-identical parity between
//! `/sweep` responses and `mlscale sweep` output files, every
//! malformed-spec class from `tests/cli.rs` arriving as a 400 naming
//! its key path, cache hit/miss semantics, a multi-threaded hammer of
//! mixed valid/malformed bodies, and refused startups (bad
//! `MLSCALE_THREADS`, unbindable `--addr`).

use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Map-entry lookup on a parsed JSON tree.
fn get<'v>(v: &'v Value, key: &str) -> Option<&'v Value> {
    v.as_map()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, entry)| entry)
}

/// A spawned `mlscale serve` subprocess, killed on drop. The stdout
/// pipe is held open for the server's lifetime — dropping it would
/// turn the banner's second line into an EPIPE.
struct Server {
    child: Child,
    addr: String,
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Server {
    /// Spawns `mlscale serve --addr 127.0.0.1:0` and parses the bound
    /// address from its startup banner.
    fn spawn(threads: &str) -> Server {
        Self::spawn_with_faults(threads, None)
    }

    /// [`Self::spawn`] with an optional `MLSCALE_FAULTS` plan armed in
    /// the daemon's environment.
    fn spawn_with_faults(threads: &str, faults: Option<&str>) -> Server {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_mlscale"));
        cmd.args(["serve", "--addr", "127.0.0.1:0", "--threads", threads])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        if let Some(spec) = faults {
            cmd.env("MLSCALE_FAULTS", spec);
        }
        let mut child = cmd.spawn().expect("spawn mlscale serve");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut reader = BufReader::new(stdout);
        let mut banner = String::new();
        reader.read_line(&mut banner).expect("server banner");
        let addr = banner
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
            .to_string();
        Server {
            child,
            addr,
            _stdout: reader,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

/// One parsed HTTP response.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one keep-alive response off a stream.
fn read_reply(reader: &mut BufReader<TcpStream>) -> Reply {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut headers = Vec::new();
    let mut length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').expect("header has a colon");
        let (name, value) = (name.trim().to_string(), value.trim().to_string());
        if name.eq_ignore_ascii_case("content-length") {
            length = value.parse().expect("numeric Content-Length");
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("body");
    Reply {
        status,
        headers,
        body: String::from_utf8(body).expect("UTF-8 body"),
    }
}

/// POSTs `body` to `path` on a fresh connection.
fn post(addr: &str, path: &str, body: &str) -> Reply {
    request(addr, "POST", path, body)
}

fn request(addr: &str, method: &str, path: &str, body: &str) -> Reply {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone stream");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: mlscale\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    read_reply(&mut BufReader::new(stream))
}

fn scenario_files() -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir("scenarios")
        .expect("scenarios dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no checked-in scenarios found");
    files
}

/// A single-configuration gd spec (no sweep axes) for /gd and /plan.
const GD_SPEC: &str = r#"{"name": "one", "workload": {"kind": "gd", "preset": "fig2", "max_n": 13,
    "plan": {"iterations": 100, "price": 2.0}}}"#;

// ---------------------------------------------------------------------------
// Parity: the daemon answers with the exact bytes `mlscale sweep` writes
// ---------------------------------------------------------------------------

#[test]
fn sweep_responses_match_sweep_files_byte_for_byte() {
    let server = Server::spawn("4");
    let out_dir = std::env::temp_dir().join(format!("mlscale-serve-parity-{}", std::process::id()));
    for file in scenario_files() {
        let spec = std::fs::read_to_string(&file).expect("read scenario");
        let reply = post(&server.addr, "/sweep", &spec);
        assert_eq!(reply.status, 200, "{}: {}", file.display(), reply.body);

        std::fs::remove_dir_all(&out_dir).ok();
        let sweep = Command::new(env!("CARGO_BIN_EXE_mlscale"))
            .args(["sweep", file.to_str().unwrap(), "--out"])
            .arg(&out_dir)
            .output()
            .expect("spawn mlscale sweep");
        assert!(
            sweep.status.success(),
            "{}: {}",
            file.display(),
            String::from_utf8_lossy(&sweep.stderr)
        );

        let envelope: Value = serde_json::from_str(&reply.body).expect("response parses");
        let points = get(&envelope, "points")
            .and_then(Value::as_seq)
            .unwrap_or_else(|| panic!("{}: no points array", file.display()));
        let rollup = get(&envelope, "rollup").expect("envelope rollup");
        assert!(!points.is_empty(), "{}: empty sweep", file.display());
        // Each served result names itself; its sweep file is `<id>.json`.
        for result in points.iter().chain(std::iter::once(rollup)) {
            let id = get(result, "id")
                .and_then(Value::as_str)
                .expect("result id");
            let written = std::fs::read_to_string(out_dir.join(format!("{id}.json")))
                .unwrap_or_else(|e| panic!("{}: no sweep file for {id}: {e}", file.display()));
            let served = serde_json::to_string_pretty(result).expect("re-print");
            assert_eq!(served, written, "{}: {id} served != swept", file.display());
        }
    }
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn gd_and_plan_answer_single_configurations() {
    let server = Server::spawn("2");
    for path in ["/gd", "/plan"] {
        let reply = post(&server.addr, path, GD_SPEC);
        assert_eq!(reply.status, 200, "{path}: {}", reply.body);
        let point: Value = serde_json::from_str(&reply.body).expect("point parses");
        assert!(get(&point, "stats").is_some(), "{path}: no stats in point");
    }
    // /plan without a plan block names workload.plan.
    let no_plan = r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2", "max_n": 13}}"#;
    let reply = post(&server.addr, "/plan", no_plan);
    assert_eq!(reply.status, 400);
    assert!(reply.body.contains("workload.plan"), "{}", reply.body);
    // Exhibit specs are redirected to /sweep by a named error.
    let exhibit = std::fs::read_to_string("scenarios/fig1.json").expect("fig1");
    let reply = post(&server.addr, "/gd", &exhibit);
    assert_eq!(reply.status, 400);
    assert!(reply.body.contains("workload.kind"), "{}", reply.body);
}

// ---------------------------------------------------------------------------
// Validation: every malformed-spec class from tests/cli.rs becomes a 400
// ---------------------------------------------------------------------------

/// The malformed scenario documents `tests/cli.rs` proves exit 2 on,
/// paired with the key path the diagnostic must name.
const MALFORMED: &[(&str, &str, &str)] = &[
    (
        "unknown-field",
        r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2", "latancy": 1.0}}"#,
        "workload.latancy",
    ),
    (
        "negative-n",
        r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2", "max_n": -3}}"#,
        "workload.max_n",
    ),
    (
        "empty-axis",
        r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2"},
            "sweep": [{"param": "jitter", "values": []}]}"#,
        "sweep[0].values",
    ),
    (
        "preset-rack-conflict",
        r#"{"name": "t", "workload": {"kind": "gd", "preset": "pod", "rack_size": 8}}"#,
        "workload.rack_size",
    ),
    (
        "bad-axis-value",
        r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2"},
            "sweep": [{"param": "comm", "values": ["tree", "warp"]}]}"#,
        "grid point t-p001",
    ),
    (
        "exhibit-sweep",
        r#"{"name": "t", "workload": {"kind": "exhibit", "id": "fig1"},
            "sweep": [{"param": "max_n", "values": [8]}]}"#,
        "sweep",
    ),
    (
        "extreme-max-n",
        r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2", "max_n": 1000000000}}"#,
        "workload.max_n",
    ),
    ("syntax", r#"{"name": "t", "workload": }"#, "invalid JSON"),
];

#[test]
fn extreme_max_n_needs_log_spaced_mode() {
    let server = Server::spawn("2");
    // Without log_points the dense cap is a 400 naming workload.max_n
    // (instead of the old behaviour: exhausting memory on a 10⁹-entry table).
    let dense = r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2",
        "max_n": 1000000000, "straggler": {"kind": "exp", "mean": 0.05}}}"#;
    let reply = post(&server.addr, "/gd", dense);
    assert_eq!(reply.status, 400, "{}", reply.body);
    assert!(reply.body.contains("workload.max_n"), "{}", reply.body);
    assert!(reply.body.contains("log_points"), "{}", reply.body);
    // Opting into the log-spaced ladder answers a 10⁶-worker curve.
    let ladder = r#"{"name": "t", "workload": {"kind": "gd", "preset": "fig2",
        "max_n": 1000000, "log_points": 40,
        "straggler": {"kind": "exp", "mean": 0.05}}}"#;
    let reply = post(&server.addr, "/gd", ladder);
    assert_eq!(reply.status, 200, "{}", reply.body);
    let point: Value = serde_json::from_str(&reply.body).expect("point parses");
    assert!(get(&point, "stats").is_some(), "no stats in {}", reply.body);
}

#[test]
fn malformed_specs_get_400_naming_the_key_path() {
    let server = Server::spawn("2");
    for (tag, body, key) in MALFORMED {
        let reply = post(&server.addr, "/sweep", body);
        assert_eq!(reply.status, 400, "{tag}: {}", reply.body);
        assert!(
            reply.body.contains(key),
            "{tag}: 400 body must name {key:?}, got {}",
            reply.body
        );
        let parsed: Value = serde_json::from_str(&reply.body)
            .unwrap_or_else(|e| panic!("{tag}: 400 body is not JSON ({e}): {}", reply.body));
        assert!(
            get(&parsed, "error").is_some_and(|e| get(e, "path").is_some()),
            "{tag}: 400 body must carry error.path, got {}",
            reply.body
        );
    }
}

#[test]
fn unknown_paths_and_methods_are_rejected() {
    let server = Server::spawn("1");
    let reply = post(&server.addr, "/train", "{}");
    assert_eq!(reply.status, 404);
    let reply = request(&server.addr, "GET", "/sweep", "");
    assert_eq!(reply.status, 405);
    assert_eq!(reply.header("Allow"), Some("POST"));
}

// ---------------------------------------------------------------------------
// Caching
// ---------------------------------------------------------------------------

#[test]
fn cached_repeat_is_byte_identical_and_fast() {
    let server = Server::spawn("2");
    let spec = std::fs::read_to_string("scenarios/fig2.json").expect("fig2");
    let cold = post(&server.addr, "/sweep", &spec);
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("x-mlscale-cache"), Some("miss"));
    let warm = post(&server.addr, "/sweep", &spec);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-mlscale-cache"), Some("hit"));
    assert_eq!(cold.body, warm.body, "cached body must be byte-identical");
    let micros: u64 = warm
        .header("x-mlscale-micros")
        .expect("micros header")
        .parse()
        .expect("numeric micros");
    assert!(
        micros < 100_000,
        "cache hit took {micros} µs server-side — the LRU is not being hit"
    );
}

#[test]
fn keep_alive_connection_serves_sequential_requests() {
    let server = Server::spawn("1");
    let stream = TcpStream::connect(&server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let spec = std::fs::read_to_string("scenarios/fig2.json").expect("fig2");
    for expected in ["miss", "hit", "hit"] {
        write!(
            writer,
            "POST /sweep HTTP/1.1\r\nHost: mlscale\r\nContent-Length: {}\r\n\r\n{spec}",
            spec.len()
        )
        .expect("write");
        let reply = read_reply(&mut reader);
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("x-mlscale-cache"), Some(expected));
    }
}

// ---------------------------------------------------------------------------
// Fault injection: a dropped response must not take the daemon down
// ---------------------------------------------------------------------------

#[test]
fn injected_response_fault_drops_one_connection_and_recovers() {
    let server = Server::spawn_with_faults("2", Some("serve.write_response:2=err"));

    let first = post(&server.addr, "/gd", GD_SPEC);
    assert_eq!(first.status, 200, "{}", first.body);

    // The second response hits the armed fault: the daemon drops the
    // connection without writing — the client sees a clean close with
    // zero bytes, never a torn response.
    let mut stream = TcpStream::connect(&server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    write!(
        stream,
        "POST /gd HTTP/1.1\r\nHost: mlscale\r\nContent-Length: {}\r\n\r\n{GD_SPEC}",
        GD_SPEC.len()
    )
    .expect("write request");
    let mut dropped = Vec::new();
    stream.read_to_end(&mut dropped).expect("read to close");
    assert!(
        dropped.is_empty(),
        "the faulted response must be dropped whole, got {} bytes",
        dropped.len()
    );

    // The fault was one-shot; the worker survived and serves on.
    let third = post(&server.addr, "/gd", GD_SPEC);
    assert_eq!(third.status, 200, "{}", third.body);
}

// ---------------------------------------------------------------------------
// Concurrency: mixed valid/malformed hammer from many client threads
// ---------------------------------------------------------------------------

#[test]
fn concurrent_hammer_drops_nothing_and_stays_consistent() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 12;
    let server = Server::spawn("4");
    let fig2 = std::fs::read_to_string("scenarios/fig2.json").expect("fig2");
    let addr = server.addr.clone();

    let baseline = post(&addr, "/sweep", &fig2);
    assert_eq!(baseline.status, 200);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let (addr, fig2, baseline) = (&addr, &fig2, &baseline.body);
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        // Rotate through valid sweeps, valid single points
                        // and every malformed class, offset per client so
                        // the server sees all kinds at once.
                        match (client + round) % 4 {
                            0 => {
                                let reply = post(addr, "/sweep", fig2);
                                assert_eq!(reply.status, 200, "{}", reply.body);
                                assert_eq!(
                                    &reply.body, baseline,
                                    "client {client} round {round}: cold and cached \
                                     responses must be byte-identical"
                                );
                            }
                            1 => {
                                let reply = post(addr, "/gd", GD_SPEC);
                                assert_eq!(reply.status, 200, "{}", reply.body);
                            }
                            _ => {
                                let (tag, body, key) =
                                    MALFORMED[(client * ROUNDS + round) % MALFORMED.len()];
                                let reply = post(addr, "/sweep", body);
                                assert_eq!(reply.status, 400, "{tag}: {}", reply.body);
                                assert!(
                                    reply.body.contains(key),
                                    "{tag}: must name {key:?}, got {}",
                                    reply.body
                                );
                            }
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread survived");
        }
    });

    // The server is still alive and answering after the hammer.
    let after = post(&addr, "/sweep", &fig2);
    assert_eq!(after.status, 200);
    assert_eq!(after.body, baseline.body);
}

// ---------------------------------------------------------------------------
// Refused startups
// ---------------------------------------------------------------------------

#[test]
fn invalid_mlscale_threads_refuses_startup() {
    for verb in [
        &["serve", "--addr", "127.0.0.1:0"][..],
        &["gd", "--preset", "fig2"][..],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_mlscale"))
            .args(verb)
            .env("MLSCALE_THREADS", "abc")
            .output()
            .expect("spawn mlscale");
        assert_eq!(
            out.status.code(),
            Some(2),
            "MLSCALE_THREADS=abc must exit 2 for {verb:?}"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("MLSCALE_THREADS") && stderr.contains("abc"),
            "diagnostic must name the variable and value, got: {stderr}"
        );
    }
}

#[test]
fn unbindable_addr_exits_2_naming_the_flag() {
    let out = Command::new(env!("CARGO_BIN_EXE_mlscale"))
        .args(["serve", "--addr", "definitely-not-an-address"])
        .output()
        .expect("spawn mlscale");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--addr") && stderr.contains("definitely-not-an-address"),
        "got: {stderr}"
    );
}

#[test]
fn bad_threads_flag_exits_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_mlscale"))
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "none"])
        .output()
        .expect("spawn mlscale");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"));
}
