//! The Fig 2 pipeline end to end, including a *real* (scaled-down)
//! data-parallel training run:
//!
//! 1. derive the workload cost from the actual MNIST network definition
//!    (Table I), not from hand-entered constants;
//! 2. compare the analytic speedup curve with the simulated Spark cluster;
//! 3. train a scaled-down MLP with real sharded gradient averaging to show
//!    the modelled schedule is a real computation (identical updates).
//!
//! Run with: `cargo run --release --example spark_mnist`

use mlscale::model::hardware::presets;
use mlscale::model::models::gd::{GdComm, GradientDescentModel};
use mlscale::model::units::FlopCount;
use mlscale::nn::train::{synthetic_blobs, MlpTrainer};
use mlscale::nn::zoo;
use mlscale::sim::overhead::OverheadModel;
use mlscale::workloads::gd::GdWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // -- 1. Cost from the real network definition ----------------------
    let net = zoo::mnist_fc();
    println!("network: {} ({} params)", net.name, net.params());
    println!("{}", net.cost_table());
    let train_flops_per_example = net.train_flops() as f64;
    println!("training cost per example: {train_flops_per_example:.3e} flops (≈ 6·W)\n");

    // -- 2. Model vs simulated Spark cluster ---------------------------
    let model = GradientDescentModel {
        cost_per_example: FlopCount::new(train_flops_per_example),
        batch_size: 60_000.0,
        params: net.params() as f64,
        bits_per_param: 64,
        cluster: presets::spark_cluster(),
        comm: GdComm::Spark,
    };
    let workload = GdWorkload {
        model,
        overhead: OverheadModel::ConstantPlusJitter {
            seconds: 0.3,
            jitter_mean: 0.3,
        },
        iterations: 5,
        seed: 2017,
        ..GdWorkload::ideal(model)
    };
    let ns: Vec<usize> = (1..=16).collect();
    let (analytic, simulated) = workload.strong_curves(&ns);
    println!("{:>4} {:>12} {:>12}", "n", "model s(n)", "sim s(n)");
    for &n in &ns {
        println!(
            "{n:>4} {:>12.3} {:>12.3}",
            analytic.speedup_at(n).unwrap(),
            simulated.speedup_at(n).unwrap()
        );
    }
    let (n_opt, s_opt) = analytic.optimal();
    println!("\nmodel optimum: {n_opt} workers ({s_opt:.2}x); paper reports 9 within its plotted range\n");

    // -- 3. Real data-parallel training (scaled down) ------------------
    // Same architecture family, narrow enough to run in seconds: prove
    // that sharded gradient averaging == single-node batch GD, which is
    // the premise that makes the computation perfectly parallel.
    let mut rng = StdRng::seed_from_u64(99);
    let (x, y) = synthetic_blobs(512, 64, 10, &mut rng);
    let mut single = MlpTrainer::new(&[64, 128, 64, 10], &mut rng);
    let mut sharded = single.clone();
    for step in 0..30 {
        let l1 = single.train_step(&x, &y, 0.4);
        let l2 = sharded.train_step_data_parallel(&x, &y, 8, 0.4);
        if step % 10 == 0 {
            println!("step {step:>2}: single-node loss {l1:.4}, 8-shard loss {l2:.4}");
        }
        assert!(
            (l1 - l2).abs() < 1e-4,
            "data-parallel must match single-node"
        );
    }
    println!(
        "final accuracy: {:.1}% (single) vs {:.1}% (8 shards) — identical updates",
        100.0 * single.accuracy(&x, &y),
        100.0 * sharded.accuracy(&x, &y)
    );
}
