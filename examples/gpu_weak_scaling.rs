//! The Fig 3 pipeline: weak scaling of Inception-v3 training on a K40 GPU
//! cluster — per-instance speedup relative to 50 nodes, with the cost
//! derived from the actual Inception v3 architecture definition.
//!
//! Also demonstrates the paper's finite-vs-infinite weak scaling contrast:
//! with logarithmic aggregation the per-instance speedup grows without
//! bound; with linear communication it saturates.
//!
//! Run with: `cargo run --release --example gpu_weak_scaling`

use mlscale::model::hardware::presets;
use mlscale::model::models::gd::{GdComm, GradientDescentModel};
use mlscale::model::units::FlopCount;
use mlscale::nn::zoo;

fn main() {
    let net = zoo::inception_v3();
    println!(
        "network: {} — {} params, {:.2e} forward madds (Table I: 25e6 / 5e9)",
        net.name,
        net.params(),
        net.forward_madds() as f64
    );
    // Chen et al. parameterisation: C = 3 × forward madds, per-worker
    // batch of 128, 32-bit gradients, K40 at 50 % of 4.28 TFLOPS.
    let model = GradientDescentModel {
        cost_per_example: FlopCount::new(3.0 * net.forward_madds() as f64),
        batch_size: 128.0,
        params: net.params() as f64,
        bits_per_param: 32,
        cluster: presets::gpu_cluster(),
        comm: GdComm::TwoStageTree,
    };

    let ns: Vec<usize> = vec![10, 25, 50, 100, 150, 200, 400];
    let log_curve = model.weak_curve(ns.iter().copied()).rebased(50);
    let linear = GradientDescentModel {
        comm: GdComm::LinearFlat,
        ..model
    };
    let lin_curve = linear.weak_curve(ns.iter().copied()).rebased(50);

    println!("\nper-instance speedup relative to 50 workers:");
    println!("{:>5} {:>16} {:>16}", "n", "log aggregation", "linear comm");
    for &n in &ns {
        println!(
            "{n:>5} {:>16.3} {:>16.3}",
            log_curve.speedup_at(n).unwrap(),
            lin_curve.speedup_at(n).unwrap()
        );
    }
    println!("\nlogarithmic aggregation: every doubling keeps helping (infinite weak scaling).");
    println!("linear communication: saturates once the exchange dominates (finite scaling).");

    // The instances-per-second view at a few cluster sizes.
    println!("\nthroughput view (instances/s, effective batch = 128·n):");
    for &n in &[1usize, 10, 50, 100, 200] {
        let t = model.weak_iteration_time(n).as_secs();
        let throughput = 128.0 * n as f64 / t;
        println!("  n = {n:>3}: {throughput:>12.0} instances/s");
    }
}
