//! The paper's future-work direction made concrete: asynchronous gradient
//! descent on a parameter server, simulated event by event.
//!
//! Synchronous BSP pays the *maximum* straggler in every round; async pays
//! the mean but trades it for gradient staleness — the
//! parallelism-vs-convergence trade-off the paper highlights. This example
//! sweeps worker counts and prints throughput and staleness for both
//! modes.
//!
//! Run with: `cargo run --release --example async_sgd`

use mlscale::model::hardware::{ClusterSpec, LinkSpec, NodeSpec};
use mlscale::model::units::{BitsPerSec, FlopsRate};
use mlscale::sim::bsp::{simulate, BspConfig, BspProgram, CommPhase, SuperstepSpec};
use mlscale::sim::collectives::{BroadcastKind, ReduceKind};
use mlscale::sim::overhead::OverheadModel;
use mlscale::sim::paramserver::{simulate_async, ParamServerConfig};

fn main() {
    let cluster = ClusterSpec::new(
        NodeSpec::new(FlopsRate::giga(10.0), 1.0),
        LinkSpec::bandwidth_only(BitsPerSec::giga(10.0)),
    );
    // A 10M-parameter model: 0.32 s of gradient compute per update,
    // 320 Mbit of traffic per push/pull; heavy-tailed stragglers.
    let grad_flops = 3.2e9;
    let payload_bits = 32.0 * 10e6;
    let overhead = OverheadModel::LogNormal {
        mu: -3.0,
        sigma: 1.0,
    };
    let updates = 256;

    println!(
        "{:>4} {:>14} {:>14} {:>12} {:>12}",
        "n", "sync upd/s", "async upd/s", "async/sync", "staleness"
    );
    for n in [1usize, 2, 4, 8, 16, 32] {
        // Synchronous: each BSP round produces n gradient updates.
        let rounds = updates / n;
        let sync_report = simulate(
            &BspProgram {
                supersteps: vec![SuperstepSpec::even(
                    grad_flops * n as f64,
                    n,
                    CommPhase::GradientExchange {
                        bits: payload_bits,
                        broadcast: BroadcastKind::Torrent,
                        reduce: ReduceKind::TwoWave,
                    },
                )],
                iterations: rounds.max(1),
            },
            &BspConfig {
                cluster,
                overhead,
                seed: 11,
            },
            n,
        );
        let sync_throughput = (rounds.max(1) * n) as f64 / sync_report.total.as_secs();

        // Asynchronous: same number of applied updates.
        let async_report = simulate_async(
            &ParamServerConfig {
                cluster,
                grad_flops,
                payload_bits,
                apply_flops: 1e7,
                overhead,
                seed: 11,
            },
            n,
            updates,
        );

        println!(
            "{n:>4} {sync_throughput:>14.2} {:>14.2} {:>12.2} {:>12.2}",
            async_report.throughput,
            async_report.throughput / sync_throughput,
            async_report.mean_staleness
        );
    }
    println!(
        "\nasync wins on throughput under stragglers, but staleness grows ~linearly \
         with n — gradients are computed against increasingly outdated parameters \
         (the algorithmic price of the extra parallelism)."
    );
}
