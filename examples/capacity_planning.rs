//! Capacity planning: the two practitioner questions from the paper's
//! introduction.
//!
//! 1. **Strong scaling** — "Given a workload, how many more machines are
//!    needed to decrease the run time by a certain amount?"
//! 2. **Weak scaling** — "Given an increasing workload, how many more
//!    machines to add to keep the run time the same?"
//!
//! Run with: `cargo run --example capacity_planning`

use mlscale::model::hardware::presets;
use mlscale::model::models::gd::{GdComm, GradientDescentModel};
use mlscale::model::scaling::{StrongScaling, WeakScaling};
use mlscale::model::units::FlopCount;

fn main() {
    // The paper's Fig 2 workload: the MNIST fully-connected network on the
    // Spark cluster (Xeon E3-1240 nodes, gigabit Ethernet).
    let model = GradientDescentModel {
        cost_per_example: FlopCount::new(6.0 * 12e6),
        batch_size: 60_000.0,
        params: 12e6,
        bits_per_param: 64,
        cluster: presets::spark_cluster(),
        comm: GdComm::Spark,
    };

    // -- Question 1: strong scaling ------------------------------------
    let strong = StrongScaling::new(|n| model.strong_iteration_time(n), 64);
    println!("Q1: we run on 2 workers today; how many for 1.5x faster iterations?");
    match strong.nodes_for_time_reduction(2, 1.5) {
        Some(n) => println!("    -> {n} workers\n"),
        None => println!("    -> unattainable on this hardware\n"),
    }
    println!("Q1b: and 3x faster than 2 workers?");
    match strong.nodes_for_time_reduction(2, 3.0) {
        Some(n) => println!("    -> {n} workers\n"),
        None => {
            let (n_opt, s_opt) = strong.optimal();
            println!(
                "    -> unattainable: the speedup tops out at {s_opt:.2}x with {n_opt} \
                 workers (communication overhead)\n"
            );
        }
    }

    // -- Question 2: weak scaling --------------------------------------
    // A click-through-rate-style workload: a 1M-parameter model, 32-bit
    // gradients, tree exchange, per-worker batch fixed at 16384 examples;
    // the dataset (and with it the effective batch) doubles.
    let weak_model = GradientDescentModel {
        cost_per_example: FlopCount::new(6.0 * 1e6),
        batch_size: 16_384.0,
        params: 1e6,
        bits_per_param: 32,
        comm: GdComm::TwoStageTree,
        ..model
    };
    let weak = WeakScaling::new(|n| weak_model.weak_iteration_time(n), 1024);
    println!("Q2: 8 workers keep up with today's data; the data doubles.");
    println!("    How many workers keep the iteration time within 10%?");
    match weak.nodes_for_constant_time(8, 2.0, 0.10) {
        Some(n) => println!("    -> {n} workers"),
        None => println!("    -> no worker count holds the time (communication-bound)"),
    }
    let t8 = weak_model.weak_iteration_time(8);
    let t16 = weak_model.weak_iteration_time(16);
    println!(
        "    (iteration time: {:.3} s at 8 workers, {:.3} s at 16 — the log-tree \
         exchange only adds one more level per doubling)",
        t8.as_secs(),
        t16.as_secs()
    );
    // Contrast: the same question under linear (flat) communication has no
    // answer once the exchange dominates — the paper's finite-scaling case.
    let flat = GradientDescentModel {
        comm: GdComm::LinearFlat,
        ..weak_model
    };
    let weak_flat = WeakScaling::new(|n| flat.weak_iteration_time(n), 1024);
    println!("Q2b: same question with flat (linear) communication:");
    match weak_flat.nodes_for_constant_time(8, 2.0, 0.10) {
        Some(n) => println!("    -> {n} workers"),
        None => println!("    -> impossible: linear exchange grows with every added worker"),
    }
}
