//! The Fig 4 pipeline: loopy belief propagation over a DNS-like power-law
//! graph on a shared-memory machine — Monte-Carlo model vs simulated
//! experiment — plus a *real* BP run on a small MRF to show the algorithm
//! being modelled actually exists and converges.
//!
//! Run with: `cargo run --release --example bp_dns [tiny|small]`

use mlscale::graph::generators::{dns_like, grid2d, DnsGraphSpec};
use mlscale::graph::mrf::{BeliefPropagation, PairwiseMrf, PairwisePotential};
use mlscale::model::hardware::presets;
use mlscale::model::units::BitsPerSec;
use mlscale::sim::overhead::OverheadModel;
use mlscale::workloads::bp::BpWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let spec = match std::env::args().nth(1).as_deref() {
        Some("small") => DnsGraphSpec::small(),
        _ => DnsGraphSpec::tiny(),
    };

    // -- 1. A real BP run (image-denoising-style MRF) -------------------
    // 32x32 grid, 2 states, Potts smoothing with a biased corner: the
    // algorithm whose per-edge cost c(S) = S + 2(S+S²) the model prices.
    let grid = grid2d(32, 32);
    let v = grid.vertices();
    let mut unary = vec![1.0f64; v * 2];
    unary[0] = 50.0; // strong evidence at vertex 0 for state 0
    unary[1] = 0.02;
    let mrf = PairwiseMrf::new(
        grid,
        2,
        unary,
        PairwisePotential::Potts {
            same: 1.8,
            diff: 0.6,
        },
    );
    let mut bp = BeliefPropagation::new(&mrf);
    let run = bp.run(200, 1e-8);
    println!(
        "real BP on a 32x32 grid MRF: converged = {}, iterations = {}, \
         modelled cost per iteration = {:.2e} madds",
        run.converged,
        run.iterations,
        mrf.modeled_iteration_madds()
    );
    println!(
        "corner belief spread: b(0)[0] = {:.3}, b(center)[0] = {:.3}\n",
        bp.belief(0)[0],
        bp.belief((v / 2) as u32)[0]
    );

    // -- 2. Scalability: model vs simulated experiment ------------------
    println!(
        "generating DNS-like graph: {} vertices, {} edges, hub degree ~{} …",
        spec.vertices, spec.edges, spec.max_degree
    );
    let mut rng = StdRng::seed_from_u64(0xD45);
    let graph = dns_like(spec, &mut rng);
    println!(
        "generated: max degree {}, avg degree {:.1}\n",
        graph.max_degree(),
        graph.avg_degree()
    );

    let flops = presets::dl980_core().effective();
    let t1 = graph.edges() as f64 * 14.0 / flops.get();
    let workload = BpWorkload {
        graph: &graph,
        states: 2,
        flops,
        bandwidth: BitsPerSec::new(f64::INFINITY), // shared memory
        overhead: OverheadModel::PerWorkerLinear {
            base: 2e-5 * t1,
            per_worker: 5e-4 * t1,
        },
        trials: 3,
        iterations: 3,
        seed: 0xF16,
    };
    let ns: Vec<usize> = vec![1, 2, 4, 8, 16, 24, 32, 48, 64, 80];
    let model = workload.model_curve(&ns);
    let sim = workload.simulated_curve(&ns);
    println!("{:>4} {:>14} {:>14}", "n", "model s(n)", "sim s(n)");
    for &n in &ns {
        println!(
            "{n:>4} {:>14.2} {:>14.2}",
            model.speedup_at(n).unwrap(),
            sim.speedup_at(n).unwrap()
        );
    }
    let (n_sim, s_sim) = sim.optimal();
    println!(
        "\nthe simulated run peaks at {n_sim} workers ({s_sim:.1}x): execution \
         overhead takes over beyond that, as the paper observed on the DL980"
    );
}
