//! Quickstart: build a scalability model for your own workload and
//! hardware, print the speedup table, and read off the optimal cluster
//! size — the paper's core loop, in ~30 lines.
//!
//! Run with: `cargo run --example quickstart`

use mlscale::model::hardware::{ClusterSpec, LinkSpec, NodeSpec};
use mlscale::model::models::gd::{GdComm, GradientDescentModel};
use mlscale::model::units::{BitsPerSec, FlopCount, FlopsRate};

fn main() {
    // 1. Describe the hardware: no profiling, just the spec sheet.
    let cluster = ClusterSpec::new(
        // 100 GFLOPS peak per node, assume 80 % achievable.
        NodeSpec::new(FlopsRate::giga(100.0), 0.8),
        // 10 Gbit/s interconnect.
        LinkSpec::bandwidth_only(BitsPerSec::giga(10.0)),
    );

    // 2. Describe the workload: a 5M-parameter model trained with
    //    mini-batch SGD, batch of 4096, gradient cost 6 flops per weight
    //    per example (the fully-connected training rule).
    let params = 5e6;
    let model = GradientDescentModel {
        cost_per_example: FlopCount::new(6.0 * params),
        batch_size: 4096.0,
        params,
        bits_per_param: 32,
        cluster,
        comm: GdComm::TwoStageTree,
    };

    // 3. Read the speedup curve.
    let curve = model.strong_curve(1..=64);
    println!("strong scaling, per-iteration speedup:\n");
    println!("{}", curve.to_table());

    let (n_opt, s_opt) = curve.optimal();
    println!("optimal cluster size: {n_opt} workers (speedup {s_opt:.2}×)");
    println!(
        "90%-of-peak knee:     {} workers (diminishing returns beyond this)",
        curve.knee(0.9)
    );
    if let Some(onset) = model.comm_dominance_onset(64) {
        println!("communication exceeds computation from n = {onset}");
    }
}
